//! Deferred-Merge Embedding (DME) with exact Elmore balancing and
//! integrated buffering.
//!
//! The classic zero-skew-tree construction (Chao–Hsu–Kahng / Boese–Kahng):
//! a bottom-up pass computes, for every merge of the [`TopologyPlan`], the
//! *merging region* — the locus of merge locations that equalize the Elmore
//! delays of the two subtrees — together with the wire lengths assigned to
//! each side (allowing snaking when one side is much faster); a top-down
//! pass then fixes each node at the point of its region closest to its
//! already-placed parent.
//!
//! [`build_buffered_tree`] extends the merge step with *buffered DME*:
//! subtrees whose accumulated capacitance exceeds the stage-cap limit are
//! capped with a buffer before merging, and edges whose wire capacitance
//! alone exceeds the limit receive evenly spaced repeaters. Both delays are
//! folded into the balance equation, so the finished tree keeps
//! (near-)exactly zero Elmore skew — which the timing crate's tests verify
//! end-to-end.

use crate::{ClockTree, CtsError, CtsOptions, NodeId, NodeKind, PlanNode, TopologyPlan};
use snr_geom::{lshape_via, Point, Trr};
use snr_netlist::Design;
use snr_tech::{units, BufferCell, Technology};

/// Per-plan-node bottom-up state.
struct MergeState {
    /// Merging region (locus of feasible locations).
    region: Trr,
    /// Subtree Elmore delay from this node to its sinks, ps.
    delay_ps: f64,
    /// Subtree capacitance seen at this node, fF.
    cap_ff: f64,
    /// Designed wire lengths to the two children, nm (0 for leaves).
    child_len_nm: [f64; 2],
    /// Repeaters inserted along each child edge.
    child_reps: [u32; 2],
    /// Buffer cell inserted at this node (buffered DME only).
    buffer: Option<usize>,
}

/// Builds the unbuffered, Elmore-balanced clock tree for `plan`.
///
/// Wire parasitics are taken from the technology's clock layer at the
/// options' *construction rule* (industrially, trees are built assuming the
/// uniform conservative NDR; the optimizer later relaxes individual edges).
///
/// # Errors
///
/// Returns [`CtsError`] if the plan does not match the design (wrong sink
/// count or indices) — see [`TopologyPlan::check`].
pub fn build_unbuffered_tree(
    design: &Design,
    tech: &Technology,
    opts: &CtsOptions,
    plan: &TopologyPlan,
) -> Result<ClockTree, CtsError> {
    build_tree_inner(design, tech, opts, plan, false)
}

/// Builds a *buffered* Elmore-balanced clock tree: buffered DME.
///
/// Buffers are inserted bottom-up during merging whenever a subtree's
/// accumulated capacitance exceeds the stage-cap limit; long edges receive
/// evenly spaced repeaters. Because insertion happens before each merge is
/// balanced, the wire-length split compensates for buffer delays and the
/// tree keeps (near-)zero Elmore skew even with unequal stage loads. A root
/// driver is always added.
///
/// # Errors
///
/// Returns [`CtsError`] if the plan does not match the design, or if no
/// library buffer can drive a stage load within three times the slew
/// target.
pub fn build_buffered_tree(
    design: &Design,
    tech: &Technology,
    opts: &CtsOptions,
    plan: &TopologyPlan,
) -> Result<ClockTree, CtsError> {
    build_tree_inner(design, tech, opts, plan, true)
}

fn pick_cell(tech: &Technology, opts: &CtsOptions, load_ff: f64) -> Result<usize, CtsError> {
    let lib = tech.buffers();
    let cell = lib
        .smallest_for_slew(load_ff, opts.slew_target_ps())
        .or_else(|| lib.smallest_for_slew(load_ff, 3.0 * opts.slew_target_ps()))
        .ok_or_else(|| {
            CtsError::new(format!(
                "no buffer can drive {load_ff:.1} fF within 3x slew target {:.0} ps",
                opts.slew_target_ps()
            ))
        })?;
    lib.cells()
        .iter()
        .position(|c| c.name() == cell.name())
        .ok_or_else(|| CtsError::new(format!("buffer cell {:?} not in the library", cell.name())))
}

/// Electrical model of one tree edge: uniform wire of the construction rule
/// with `k` evenly spaced repeaters.
#[derive(Clone, Copy)]
struct EdgeModel<'a> {
    /// Unit resistance, kΩ/µm.
    r: f64,
    /// Unit capacitance, fF/µm.
    c: f64,
    /// Stage-cap limit driving repeater count, fF (`None` disables
    /// repeaters — the unbuffered build).
    cmax: Option<f64>,
    /// Repeater cell (only consulted when `cmax` is set).
    rep: Option<&'a BufferCell>,
}

impl EdgeModel<'_> {
    /// Repeater count for an edge of `e_um` µm.
    fn reps_for(&self, e_um: f64) -> u32 {
        match self.cmax {
            Some(cmax) if self.c * e_um > cmax => ((self.c * e_um) / cmax).ceil() as u32 - 1,
            _ => 0,
        }
    }

    /// Delay through an edge of `e_um` with `k` repeaters driving
    /// `load_ff`, and the capacitance seen at the top of the edge.
    fn eval(&self, e_um: f64, k: u32, load_ff: f64) -> (f64, f64) {
        let seg = e_um / f64::from(k + 1);
        let mut t = 0.0;
        let mut cap = load_ff;
        for i in 0..=k {
            t += self.r * seg * (self.c * seg / 2.0 + cap);
            cap += self.c * seg;
            if i < k {
                // `reps_for` only returns k > 0 when `cmax` is set, and the
                // constructor pairs `cmax` with a repeater cell.
                if let Some(rep) = self.rep {
                    t += rep.delay_ps(cap);
                    cap = rep.input_cap_ff();
                }
            }
        }
        (t, cap)
    }
}

/// Result of balancing one merge.
struct Split {
    ea_um: f64,
    eb_um: f64,
    ka: u32,
    kb: u32,
    /// Elmore delay of the merged node (either side, they are equal).
    delay_ps: f64,
    /// Capacitance seen at the merge point.
    cap_ff: f64,
}

/// Splits the merge distance `d_um` into the wire lengths `(ea, eb)` that
/// equalize the two subtrees' delays (snaking one side when needed), with
/// repeater counts consistent with the final lengths.
fn solve_split(
    model: &EdgeModel<'_>,
    (ta, ca): (f64, f64),
    (tb, cb): (f64, f64),
    d_um: f64,
) -> Split {
    // Iterate on the repeater counts: fix (ka, kb), solve the continuous
    // balance exactly, then check the counts still *cover* the stage-cap
    // requirement of the solved lengths. When the balance target falls in
    // the delay discontinuity at a count threshold, a count larger than the
    // minimum is legal (a repeater on a shorter edge just splits the stage
    // further), so coverage — not equality — is the convergence test, and
    // counts only ever grow: the loop terminates.
    let (mut ea, mut eb) = closed_form_split(model.r, model.c, (ta, ca), (tb, cb), d_um);
    let mut ka = model.reps_for(ea);
    let mut kb = model.reps_for(eb);
    loop {
        let balance =
            |x_a: f64, x_b: f64| ta + model.eval(x_a, ka, ca).0 - (tb + model.eval(x_b, kb, cb).0);
        let (na, nb) = if balance(0.0, d_um) >= 0.0 {
            // Side a is slower even with the whole span on b: snake b.
            let target = |e: f64| tb + model.eval(e, kb, cb).0 - ta;
            (0.0, solve_increasing(target, d_um))
        } else if balance(d_um, 0.0) <= 0.0 {
            let target = |e: f64| ta + model.eval(e, ka, ca).0 - tb;
            (solve_increasing(target, d_um), 0.0)
        } else {
            // Root of balance(x, d-x) in (0, d).
            let g = |x: f64| balance(x, d_um - x);
            let mut lo = 0.0;
            let mut hi = d_um;
            for _ in 0..100 {
                let mid = (lo + hi) / 2.0;
                if g(mid) < 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let x = (lo + hi) / 2.0;
            (x, d_um - x)
        };
        ea = na;
        eb = nb;
        let (need_a, need_b) = (model.reps_for(ea), model.reps_for(eb));
        if need_a <= ka && need_b <= kb {
            break;
        }
        ka = ka.max(need_a);
        kb = kb.max(need_b);
    }
    let (da, cap_a) = model.eval(ea, ka, ca);
    let (_, cap_b) = model.eval(eb, kb, cb);
    // Extreme-but-valid inputs (a sink pin near the capacitance bound, a
    // near-reticle-size span) can saturate the snaking solver, leaving a
    // residual imbalance. The split is still a structurally sound tree; the
    // imbalance surfaces as skew, which the timing analyzer reports and the
    // feasibility checks reject — so accept it rather than assert.
    Split {
        ea_um: ea,
        eb_um: eb,
        ka,
        kb,
        delay_ps: ta + da,
        cap_ff: cap_a + cap_b,
    }
}

/// Exact closed-form split for the pure-wire (no repeater) case; also the
/// starting point for the repeater-aware iteration.
fn closed_form_split(
    r: f64,
    c: f64,
    (ta, ca): (f64, f64),
    (tb, cb): (f64, f64),
    d_um: f64,
) -> (f64, f64) {
    let denom = r * (ca + cb + c * d_um);
    let ea = if denom > 0.0 {
        ((tb - ta) + r * d_um * (cb + c * d_um / 2.0)) / denom
    } else {
        d_um / 2.0
    };
    if ea < 0.0 {
        (0.0, snake_length_um(r, c, cb, ta - tb).max(d_um))
    } else if ea > d_um {
        (snake_length_um(r, c, ca, tb - ta).max(d_um), 0.0)
    } else {
        (ea, d_um - ea)
    }
}

/// Finds `e >= lo` with `f(e) = 0` for a continuous increasing `f` with
/// `f(lo) <= 0` (doubling then bisection).
fn solve_increasing(f: impl Fn(f64) -> f64, lo: f64) -> f64 {
    if f(lo) >= 0.0 {
        return lo;
    }
    let mut hi = (lo * 2.0).max(1.0);
    let mut guard = 0;
    while f(hi) < 0.0 && guard < 80 {
        hi *= 2.0;
        guard += 1;
    }
    let mut a = lo;
    let mut b = hi;
    for _ in 0..100 {
        let mid = (a + b) / 2.0;
        if f(mid) < 0.0 {
            a = mid;
        } else {
            b = mid;
        }
    }
    (a + b) / 2.0
}

/// Length of wire (µm) that delays a subtree with load `cap_ff` by
/// `extra_ps`: the positive root of `r·x·(c·x/2 + C) = extra`.
fn snake_length_um(r: f64, c: f64, cap_ff: f64, extra_ps: f64) -> f64 {
    debug_assert!(extra_ps >= 0.0);
    if extra_ps <= 0.0 || r <= 0.0 {
        return 0.0;
    }
    if c <= 0.0 {
        return extra_ps / (r * cap_ff.max(f64::EPSILON));
    }
    ((cap_ff * cap_ff + 2.0 * c * extra_ps / r).sqrt() - cap_ff) / c
}

fn build_tree_inner(
    design: &Design,
    tech: &Technology,
    opts: &CtsOptions,
    plan: &TopologyPlan,
    buffered: bool,
) -> Result<ClockTree, CtsError> {
    plan.check(design.sinks().len())
        .map_err(|e| CtsError::new(format!("topology plan invalid: {e}")))?;

    let rule = opts.construction_rule();
    let r = tech.clock_unit_r(rule); // kΩ/µm
    let c = tech.clock_unit_c_delay(rule); // fF/µm (effective, for balancing)

    // One mid-size repeater cell for all long-edge repeaters, chosen for the
    // stage-cap design point.
    let rep_idx = if buffered {
        Some(pick_cell(tech, opts, opts.max_stage_cap_ff())?)
    } else {
        None
    };
    let model = EdgeModel {
        r,
        c,
        cmax: buffered.then(|| opts.max_stage_cap_ff()),
        rep: rep_idx.map(|i| &tech.buffers().cells()[i]),
    };

    // ---- Bottom-up: merging regions -------------------------------------
    let mut states: Vec<MergeState> = Vec::with_capacity(plan.nodes().len());
    for node in plan.nodes() {
        let state = match node {
            PlanNode::Leaf(sid) => {
                let sink = design
                    .sink(*sid)
                    .ok_or_else(|| CtsError::new(format!("plan references unknown {sid}")))?;
                MergeState {
                    region: Trr::point(sink.location().to_f64()),
                    delay_ps: 0.0,
                    cap_ff: sink.cap_ff(),
                    child_len_nm: [0.0, 0.0],
                    child_reps: [0, 0],
                    buffer: None,
                }
            }
            PlanNode::Merge(ai, bi) => {
                let d_nm = states[*ai].region.distance(&states[*bi].region);
                let d_um = d_nm / units::NM_PER_UM;
                if buffered {
                    // Pre-buffer a child when its subtree plus the incoming
                    // wire would blow the stage-cap limit — this keeps stage
                    // loads bounded even across long top-level edges.
                    let (ea0, eb0) = closed_form_split(
                        r,
                        c,
                        (states[*ai].delay_ps, states[*ai].cap_ff),
                        (states[*bi].delay_ps, states[*bi].cap_ff),
                        d_um,
                    );
                    for (idx, e_um) in [(*ai, ea0), (*bi, eb0)] {
                        let is_merge = matches!(plan.nodes()[idx], PlanNode::Merge(..));
                        let side = &states[idx];
                        if is_merge
                            && side.buffer.is_none()
                            && side.cap_ff + c * e_um > opts.max_stage_cap_ff()
                        {
                            let cell = pick_cell(tech, opts, side.cap_ff)?;
                            let cb = &tech.buffers().cells()[cell];
                            let s = &mut states[idx];
                            s.delay_ps += cb.delay_ps(s.cap_ff);
                            s.cap_ff = cb.input_cap_ff();
                            s.buffer = Some(cell);
                        }
                    }
                }
                let (a, b) = (&states[*ai], &states[*bi]);
                let split = solve_split(
                    &model,
                    (a.delay_ps, a.cap_ff),
                    (b.delay_ps, b.cap_ff),
                    d_um,
                );
                let ea_nm = split.ea_um * units::NM_PER_UM;
                let eb_nm = split.eb_um * units::NM_PER_UM;
                let region = a
                    .region
                    .expand(ea_nm)
                    .intersect(&b.region.expand(eb_nm))
                    .ok_or_else(|| {
                        CtsError::new(
                            "merge regions failed to intersect (numerically unstable geometry)",
                        )
                    })?;
                let mut state = MergeState {
                    region,
                    delay_ps: split.delay_ps,
                    cap_ff: split.cap_ff,
                    child_len_nm: [ea_nm, eb_nm],
                    child_reps: [split.ka, split.kb],
                    buffer: None,
                };
                if buffered && state.cap_ff > opts.max_stage_cap_ff() {
                    let cell = pick_cell(tech, opts, state.cap_ff)?;
                    let cb = &tech.buffers().cells()[cell];
                    state.delay_ps += cb.delay_ps(state.cap_ff);
                    state.cap_ff = cb.input_cap_ff();
                    state.buffer = Some(cell);
                }
                state
            }
        };
        states.push(state);
    }

    // A buffered tree always carries a root driver.
    if buffered {
        let ri = plan.root();
        if states[ri].buffer.is_none() && matches!(plan.nodes()[ri], PlanNode::Merge(..)) {
            let cell = pick_cell(tech, opts, states[ri].cap_ff)?;
            states[ri].buffer = Some(cell);
        }
    }

    // ---- Top-down: embedding ---------------------------------------------
    let root_state = &states[plan.root()];
    let root_loc = root_state
        .region
        .closest_to(design.clock_root().to_f64())
        .snap();

    let kind_of = |pi: usize| match &plan.nodes()[pi] {
        PlanNode::Leaf(sid) => NodeKind::Sink {
            sink: *sid,
            // The plan was checked against the design on entry; an unknown
            // sink cannot reach this point.
            cap_ff: design.sink(*sid).map_or(0.0, |s| s.cap_ff()),
        },
        PlanNode::Merge(..) => match states[pi].buffer {
            Some(cell) => NodeKind::Buffer { cell },
            None => NodeKind::Steiner,
        },
    };

    let mut tree = ClockTree::with_root(root_loc, kind_of(plan.root()));
    // Stack of (plan index, tree parent id, designed edge length nm, reps).
    let mut stack = Vec::new();
    if let PlanNode::Merge(a, b) = plan.nodes()[plan.root()] {
        let st = &states[plan.root()];
        stack.push((a, tree.root(), st.child_len_nm[0], st.child_reps[0]));
        stack.push((b, tree.root(), st.child_len_nm[1], st.child_reps[1]));
    }
    while let Some((pi, parent, designed_nm, reps)) = stack.pop() {
        let parent_loc = tree.node(parent).location();
        let loc = states[pi].region.closest_to(parent_loc.to_f64()).snap();
        let id = attach_edge(
            &mut tree,
            parent,
            loc,
            designed_nm,
            reps,
            rep_idx,
            kind_of(pi),
        );
        if let PlanNode::Merge(a, b) = plan.nodes()[pi] {
            let st = &states[pi];
            stack.push((a, id, st.child_len_nm[0], st.child_reps[0]));
            stack.push((b, id, st.child_len_nm[1], st.child_reps[1]));
        }
    }

    debug_assert!(tree.check().is_ok(), "DME must produce a valid tree");
    Ok(tree)
}

/// Adds the edge `parent → child_loc`, materializing `reps` repeaters
/// evenly spaced along the L-shaped route, and returns the child's id.
fn attach_edge(
    tree: &mut ClockTree,
    parent: NodeId,
    child_loc: Point,
    designed_nm: f64,
    reps: u32,
    rep_cell: Option<usize>,
    child_kind: NodeKind,
) -> NodeId {
    let parent_loc = tree.node(parent).location();
    let manhattan = parent_loc.manhattan(child_loc);
    let total_nm = (designed_nm.round() as i64).max(manhattan);
    // `reps > 0` only occurs on buffered builds, which always carry a
    // repeater cell; degrade to a plain edge otherwise.
    let cell = match rep_cell {
        Some(cell) if reps > 0 => cell,
        _ => return tree.add_node(child_kind, child_loc, parent, total_nm),
    };
    let via = lshape_via(parent_loc, child_loc);
    let leg1 = parent_loc.manhattan(via);
    let mut cur = parent;
    let links = i64::from(reps) + 1;
    let seg_designed = total_nm / links;
    let mut prev_loc = parent_loc;
    for i in 1..=i64::from(reps) {
        // Physical position at fraction i/(reps+1) along the L-path.
        let s = manhattan * i / links;
        let pos = if s <= leg1 {
            point_towards(parent_loc, via, s)
        } else {
            point_towards(via, child_loc, s - leg1)
        };
        let seg = seg_designed.max(prev_loc.manhattan(pos));
        cur = tree.add_node(NodeKind::Buffer { cell }, pos, cur, seg);
        prev_loc = pos;
    }
    let last = (total_nm - seg_designed * i64::from(reps)).max(prev_loc.manhattan(child_loc));
    tree.add_node(child_kind, child_loc, cur, last)
}

/// The point at Manhattan distance `s` from `a` towards `b` along their
/// axis-parallel connection (`a` and `b` must share a row or column).
fn point_towards(a: Point, b: Point, s: i64) -> Point {
    let d = a.manhattan(b);
    if d == 0 {
        return a;
    }
    let s = s.clamp(0, d);
    Point::new(a.x + (b.x - a.x) * s / d, a.y + (b.y - a.y) * s / d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisection_topology;
    use snr_netlist::BenchmarkSpec;
    use snr_tech::Rule;

    fn setup(n: usize) -> (Design, Technology, CtsOptions, ClockTree) {
        let design = BenchmarkSpec::new("t", n).seed(5).build().unwrap();
        let tech = Technology::n45();
        let opts = CtsOptions::default();
        let plan = bisection_topology(&design);
        let tree = build_unbuffered_tree(&design, &tech, &opts, &plan).unwrap();
        (design, tech, opts, tree)
    }

    /// Root-to-sink Elmore delay computed directly on the tree, for the
    /// construction rule (independent reimplementation for the test).
    fn elmore_delays(tree: &ClockTree, tech: &Technology, rule: Rule) -> Vec<f64> {
        let r = tech.clock_unit_r(rule);
        let c = tech.clock_unit_c_delay(rule);
        let n = tree.len();
        let mut cap = vec![0.0f64; n];
        for id in tree.postorder() {
            let node = tree.node(id);
            let mut acc = match node.kind() {
                NodeKind::Sink { cap_ff, .. } => cap_ff,
                _ => 0.0,
            };
            for ch in tree.children(id) {
                let len_um = tree.node(ch).edge_len_nm() as f64 / 1_000.0;
                acc += cap[ch.0] + c * len_um;
            }
            cap[id.0] = acc;
        }
        let mut delay = vec![0.0f64; n];
        let mut out = Vec::new();
        for id in tree.topo_order() {
            let node = tree.node(id);
            if let Some(p) = node.parent() {
                let len_um = node.edge_len_nm() as f64 / 1_000.0;
                let r_wire = r * len_um;
                delay[id.0] = delay[p.0] + r_wire * (c * len_um / 2.0 + cap[id.0]);
            }
            if node.kind().is_sink() {
                out.push(delay[id.0]);
            }
        }
        out
    }

    #[test]
    fn produces_valid_tree_with_all_sinks() {
        let (design, _, _, tree) = setup(100);
        tree.check().unwrap();
        assert_eq!(tree.sink_nodes().len(), design.sinks().len());
    }

    #[test]
    fn zero_skew_by_construction() {
        for n in [2usize, 17, 100, 333] {
            let (_, tech, opts, tree) = setup(n);
            let delays = elmore_delays(&tree, &tech, opts.construction_rule());
            let max = delays.iter().cloned().fold(f64::MIN, f64::max);
            let min = delays.iter().cloned().fold(f64::MAX, f64::min);
            // Nanometre snapping leaves sub-ps residue; the construction is
            // otherwise exact.
            assert!(max - min < 0.5, "skew {} ps too large for n={n}", max - min);
        }
    }

    #[test]
    fn buffered_tree_valid_and_repeated() {
        let design = BenchmarkSpec::new("big", 1500).seed(9).build().unwrap();
        let tech = Technology::n45();
        let opts = CtsOptions::default();
        let plan = bisection_topology(&design);
        let tree = build_buffered_tree(&design, &tech, &opts, &plan).unwrap();
        tree.check().unwrap();
        assert_eq!(tree.sink_nodes().len(), 1500);
        assert!(tree.node(tree.root()).kind().is_buffer());
        // No edge may carry more wire capacitance than the stage limit plus
        // the rounding of one repeater segment.
        let c = tech.clock_unit_c(opts.construction_rule());
        for e in tree.edges() {
            let wire_ff = c * tree.node(e).edge_len_nm() as f64 / 1_000.0;
            assert!(
                wire_ff <= opts.max_stage_cap_ff() * 1.2,
                "edge wire cap {wire_ff:.1} fF exceeds stage limit"
            );
        }
    }

    #[test]
    fn single_sink_tree() {
        let (design, _, _, tree) = setup(1);
        assert_eq!(tree.len(), 1);
        assert!(tree.node(tree.root()).kind().is_sink());
        let _ = design;
    }

    #[test]
    fn wirelength_at_least_spanning_lower_bound() {
        let (design, _, _, tree) = setup(50);
        let wl_nm: i64 = tree.nodes().iter().map(|n| n.edge_len_nm()).sum();
        assert!(wl_nm >= design.hpwl_nm());
    }

    #[test]
    fn snake_length_solves_balance() {
        let (r, c, cap, extra) = (0.002, 0.2, 50.0, 30.0);
        let x = snake_length_um(r, c, cap, extra);
        let achieved = r * x * (c * x / 2.0 + cap);
        assert!((achieved - extra).abs() < 1e-9);
        assert_eq!(snake_length_um(r, c, cap, 0.0), 0.0);
    }

    #[test]
    fn edge_model_matches_closed_form_without_repeaters() {
        let m = EdgeModel {
            r: 0.002,
            c: 0.2,
            cmax: None,
            rep: None,
        };
        let (d, cap) = m.eval(100.0, 0, 40.0);
        let expect = 0.002 * 100.0 * (0.2 * 100.0 / 2.0 + 40.0);
        assert!((d - expect).abs() < 1e-9);
        assert!((cap - (40.0 + 0.2 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn repeaters_reduce_long_edge_delay() {
        let tech = Technology::n45();
        let rep = &tech.buffers().cells()[3];
        let m0 = EdgeModel {
            r: 0.00224,
            c: 0.196,
            cmax: None,
            rep: None,
        };
        let m3 = EdgeModel {
            r: 0.00224,
            c: 0.196,
            cmax: Some(120.0),
            rep: Some(rep),
        };
        let (d0, _) = m0.eval(3_000.0, 0, 30.0);
        let k = m3.reps_for(3_000.0);
        assert!(k >= 3);
        let (dk, cap) = m3.eval(3_000.0, k, 30.0);
        assert!(dk < d0, "repeated edge {dk} not faster than bare {d0}");
        assert!(cap < 0.196 * 3_000.0, "upstream sees only the first segment");
    }

    #[test]
    fn solve_split_balances_with_repeaters() {
        let tech = Technology::n45();
        let rep = &tech.buffers().cells()[3];
        let m = EdgeModel {
            r: 0.00224,
            c: 0.196,
            cmax: Some(120.0),
            rep: Some(rep),
        };
        let (ta, ca) = (100.0, 60.0);
        let (tb, cb) = (140.0, 90.0);
        let d = 2_000.0;
        let s = solve_split(&m, (ta, ca), (tb, cb), d);
        let da = ta + m.eval(s.ea_um, s.ka, ca).0;
        let db = tb + m.eval(s.eb_um, s.kb, cb).0;
        assert!((da - db).abs() < 0.01, "unbalanced: {da} vs {db}");
        assert!((s.ea_um + s.eb_um - d).abs() < 1e-6 || s.ea_um == 0.0 || s.eb_um == 0.0);
    }

    #[test]
    fn deterministic() {
        let (_, _, _, t1) = setup(64);
        let (_, _, _, t2) = setup(64);
        assert_eq!(t1, t2);
    }

    #[test]
    fn rejects_mismatched_plan() {
        let d1 = BenchmarkSpec::new("a", 10).seed(1).build().unwrap();
        let d2 = BenchmarkSpec::new("b", 20).seed(2).build().unwrap();
        let plan = bisection_topology(&d1);
        let tech = Technology::n45();
        assert!(build_unbuffered_tree(&d2, &tech, &CtsOptions::default(), &plan).is_err());
    }

    #[test]
    fn point_towards_interpolates_on_axis() {
        let a = Point::new(0, 0);
        let b = Point::new(10, 0);
        assert_eq!(point_towards(a, b, 4), Point::new(4, 0));
        assert_eq!(point_towards(a, b, 0), a);
        assert_eq!(point_towards(a, b, 10), b);
        assert_eq!(point_towards(a, a, 5), a);
    }
}
