//! Level-synchronized buffer insertion.
//!
//! Buffers are inserted whenever the accumulated (unbuffered) downstream
//! capacitance of a stage exceeds the options' stage-cap limit. To preserve
//! the near-zero skew of the DME tree, insertion is synchronized by *merge
//! height*: if any node at a given height needs a buffer, every node at
//! that height gets one, and all of them use the same cell — the smallest
//! library cell that meets the slew target for the worst load at that
//! height. A root driver is always added at the clock entry point.

use crate::{ClockTree, CtsError, CtsOptions, NodeId, NodeKind};
use snr_tech::Technology;

/// Index of a named cell in the technology's buffer library. The cells the
/// library itself hands out always resolve; the typed error guards against
/// a mismatched technology reaching this deep.
fn cell_index(tech: &Technology, name: &str) -> Result<usize, CtsError> {
    tech.buffers()
        .cells()
        .iter()
        .position(|c| c.name() == name)
        .ok_or_else(|| CtsError::new(format!("buffer cell {name:?} not in the library")))
}

/// Inserts buffers into an unbuffered tree, returning the buffered tree.
///
/// The input tree is consumed; node ids are *not* preserved (the buffered
/// tree has a new root driver and therefore a fresh id space).
///
/// # Errors
///
/// Returns [`CtsError`] when even the largest library buffer cannot drive
/// the worst stage load within three times the slew target — a sign the
/// stage-cap limit is far too large for the library.
pub fn insert_buffers(
    tree: ClockTree,
    tech: &Technology,
    opts: &CtsOptions,
) -> Result<ClockTree, CtsError> {
    let n = tree.len();
    let c_unit = tech.clock_unit_c_delay(opts.construction_rule()); // fF/µm (effective)

    // Merge height: 0 at leaves, 1 + max(children) above.
    let mut height = vec![0usize; n];
    for id in tree.postorder() {
        for ch in tree.children(id) {
            height[id.0] = height[id.0].max(height[ch.0] + 1);
        }
    }
    let max_height = height[tree.root().0];

    // Bottom-up stage-cap accumulation with height-synchronized cuts.
    // `buffered[h]` is decided when processing height h; `acc[v]` holds the
    // unbuffered downstream cap of v given the cuts below.
    let mut acc = vec![0.0f64; n];
    let mut level_cell: Vec<Option<usize>> = vec![None; max_height + 1];
    let mut level_worst = vec![0.0f64; max_height + 1];

    // Group nodes by height for synchronized decisions.
    let mut by_height: Vec<Vec<NodeId>> = vec![Vec::new(); max_height + 1];
    for id in tree.topo_order() {
        by_height[height[id.0]].push(id);
    }

    for h in 0..=max_height {
        // First accumulate caps at this height given decisions below.
        for &id in &by_height[h] {
            let node = tree.node(id);
            let mut a = match node.kind() {
                NodeKind::Sink { cap_ff, .. } => cap_ff,
                _ => 0.0,
            };
            for ch in tree.children(id) {
                let wire_ff = c_unit * tree.node(ch).edge_len_nm() as f64 / 1_000.0;
                let below = if let Some(ci) = level_cell[height[ch.0]] {
                    // Child level is buffered: upstream sees only the input
                    // pin of the child's buffer.
                    tech.buffers().cells()[ci].input_cap_ff()
                } else {
                    acc[ch.0]
                };
                a += wire_ff + below;
            }
            acc[id.0] = a;
            level_worst[h] = level_worst[h].max(a);
        }
        // Decide: sinks (h = 0) are never buffered; other levels buffer when
        // the worst accumulated cap exceeds the limit.
        if h > 0 && level_worst[h] > opts.max_stage_cap_ff() {
            let worst = level_worst[h];
            let cell = tech
                .buffers()
                .smallest_for_slew(worst, opts.slew_target_ps())
                .or_else(|| {
                    // Tolerate up to 3x the target before declaring failure.
                    tech.buffers()
                        .smallest_for_slew(worst, 3.0 * opts.slew_target_ps())
                })
                .ok_or_else(|| {
                    CtsError::new(format!(
                        "no buffer can drive {worst:.1} fF within 3x slew target \
                         {:.0} ps",
                        opts.slew_target_ps()
                    ))
                })?;
            let index = cell_index(tech, cell.name())?;
            level_cell[h] = Some(index);
        }
    }

    // The root always carries a driver; reuse the level cell when the root's
    // height is buffered, otherwise pick for the root's accumulated load.
    let root_height = max_height;
    let root_cell = match level_cell[root_height] {
        Some(index) => index,
        None => {
            let load = acc[tree.root().0];
            let cell = tech
                .buffers()
                .smallest_for_slew(load, opts.slew_target_ps())
                .unwrap_or_else(|| tech.buffers().largest());
            let index = cell_index(tech, cell.name())?;
            level_cell[root_height] = Some(index);
            index
        }
    };

    // ---- Rebuild with buffer kinds ---------------------------------------
    // The old root becomes a buffer child of nothing (it *is* the tree top);
    // its kind switches to Buffer (the root driver sits at the old root's
    // location — the point DME already pulled towards the clock source).
    let root_kind = NodeKind::Buffer { cell: root_cell };
    let old_root_kind = tree.node(tree.root()).kind();
    let mut out = ClockTree::with_root(
        tree.node(tree.root()).location(),
        if old_root_kind.is_sink() {
            old_root_kind // degenerate single-sink tree keeps its sink
        } else {
            root_kind
        },
    );
    // DFS copy, translating ids.
    let mut stack: Vec<(NodeId, NodeId)> = tree
        .children(tree.root())
        .map(|c| (c, out.root()))
        .collect();
    while let Some((old_id, new_parent)) = stack.pop() {
        let node = tree.node(old_id);
        let kind = match node.kind() {
            NodeKind::Steiner => match level_cell[height[old_id.0]] {
                Some(cell) => NodeKind::Buffer { cell },
                None => NodeKind::Steiner,
            },
            other => other,
        };
        let new_id = out.add_node(kind, node.location(), new_parent, node.edge_len_nm());
        for ch in tree.children(old_id) {
            stack.push((ch, new_id));
        }
    }

    debug_assert!(out.check().is_ok());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bisection_topology, build_unbuffered_tree};
    use snr_netlist::BenchmarkSpec;

    fn buffered(n: usize, cap_limit: f64) -> ClockTree {
        let design = BenchmarkSpec::new("t", n).seed(8).build().unwrap();
        let tech = Technology::n45();
        let opts = CtsOptions::default().with_max_stage_cap_ff(cap_limit);
        let plan = bisection_topology(&design);
        let tree = build_unbuffered_tree(&design, &tech, &opts, &plan).unwrap();
        insert_buffers(tree, &tech, &opts).unwrap()
    }

    #[test]
    fn root_is_always_a_driver() {
        let t = buffered(64, 120.0);
        assert!(t.node(t.root()).kind().is_buffer());
    }

    #[test]
    fn sink_count_preserved() {
        for n in [2usize, 33, 200] {
            let t = buffered(n, 120.0);
            assert_eq!(t.sink_nodes().len(), n);
            t.check().unwrap();
        }
    }

    #[test]
    fn tighter_cap_limit_means_more_buffers() {
        let loose = buffered(256, 300.0).stats().n_buffers;
        let tight = buffered(256, 60.0).stats().n_buffers;
        assert!(
            tight > loose,
            "tight limit {tight} should exceed loose {loose}"
        );
    }

    #[test]
    fn buffers_at_uniform_depths() {
        // Level synchronization: all buffers of the tree sit at depths that
        // form a small set (one per buffered height), keeping stages
        // symmetric.
        let t = buffered(256, 100.0);
        let depths = t.depths();
        let mut buffer_depths: Vec<usize> = t.buffer_nodes().iter().map(|b| depths[b.0]).collect();
        buffer_depths.sort_unstable();
        buffer_depths.dedup();
        // 256 sinks => 9 merge levels; buffered heights are far fewer.
        // (The Miller-amplified delay caps raised per-level loads, so up to
        // six of the nine levels may buffer.)
        assert!(
            buffer_depths.len() <= 6,
            "buffer depths {buffer_depths:?} not synchronized"
        );
    }

    #[test]
    fn single_sink_design_stays_trivial() {
        let t = buffered(1, 120.0);
        assert_eq!(t.len(), 1);
        assert!(t.node(t.root()).kind().is_sink());
    }

    #[test]
    fn stage_caps_bounded_after_buffering() {
        // Recompute stage caps on the buffered tree: no stage may exceed the
        // limit by more than one wire-segment of slack (the decision
        // granularity).
        let limit = 120.0;
        let t = buffered(300, limit);
        let tech = Technology::n45();
        let opts = CtsOptions::default();
        let c_unit = tech.clock_unit_c_delay(opts.construction_rule());
        let mut acc = vec![0.0f64; t.len()];
        let mut worst: f64 = 0.0;
        for id in t.postorder() {
            let node = t.node(id);
            let mut a = match node.kind() {
                NodeKind::Sink { cap_ff, .. } => cap_ff,
                NodeKind::Buffer { .. } | NodeKind::Steiner => 0.0,
            };
            for ch in t.children(id) {
                let wire = c_unit * t.node(ch).edge_len_nm() as f64 / 1_000.0;
                let below = match t.node(ch).kind() {
                    NodeKind::Buffer { cell } => tech.buffers().cells()[cell].input_cap_ff(),
                    _ => acc[ch.0],
                };
                a += wire + below;
            }
            acc[id.0] = a;
            if node.kind().is_buffer() {
                worst = worst.max(a);
            }
        }
        assert!(
            worst <= 2.5 * limit,
            "worst stage cap {worst:.1} fF far exceeds limit {limit}"
        );
    }
}
