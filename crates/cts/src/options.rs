//! CTS configuration.

use snr_tech::Rule;

/// Configuration for the CTS flow.
///
/// The defaults reproduce the setting of the smart-NDR experiments: trees
/// are *constructed* assuming the most conservative rule (the industrial
/// practice the paper starts from — uniform 2W2S clock routing), buffered to
/// a 120 fF stage-capacitance limit against a 100 ps slew target.
///
/// # Examples
///
/// ```
/// use snr_cts::CtsOptions;
///
/// let opts = CtsOptions::default().with_max_stage_cap_ff(80.0);
/// assert_eq!(opts.max_stage_cap_ff(), 80.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CtsOptions {
    construction_rule: Rule,
    max_stage_cap_ff: f64,
    slew_target_ps: f64,
}

impl CtsOptions {
    /// Creates options with explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `max_stage_cap_ff` or `slew_target_ps` is not positive
    /// and finite.
    pub fn new(construction_rule: Rule, max_stage_cap_ff: f64, slew_target_ps: f64) -> Self {
        assert!(
            max_stage_cap_ff.is_finite() && max_stage_cap_ff > 0.0,
            "stage cap limit {max_stage_cap_ff} must be positive"
        );
        assert!(
            slew_target_ps.is_finite() && slew_target_ps > 0.0,
            "slew target {slew_target_ps} must be positive"
        );
        CtsOptions {
            construction_rule,
            max_stage_cap_ff,
            slew_target_ps,
        }
    }

    /// The routing rule whose parasitics DME uses when balancing the tree.
    pub fn construction_rule(&self) -> Rule {
        self.construction_rule
    }

    /// Maximum capacitance a single buffer stage may drive, in fF.
    pub fn max_stage_cap_ff(&self) -> f64 {
        self.max_stage_cap_ff
    }

    /// Buffer-output slew target used for cell selection, in ps.
    pub fn slew_target_ps(&self) -> f64 {
        self.slew_target_ps
    }

    /// Returns a copy with a different construction rule.
    pub fn with_construction_rule(mut self, rule: Rule) -> Self {
        self.construction_rule = rule;
        self
    }

    /// Returns a copy with a different stage-capacitance limit.
    pub fn with_max_stage_cap_ff(mut self, cap: f64) -> Self {
        assert!(cap.is_finite() && cap > 0.0, "stage cap {cap} must be positive");
        self.max_stage_cap_ff = cap;
        self
    }

    /// Returns a copy with a different slew target.
    pub fn with_slew_target_ps(mut self, slew: f64) -> Self {
        assert!(slew.is_finite() && slew > 0.0, "slew target {slew} must be positive");
        self.slew_target_ps = slew;
        self
    }
}

impl Default for CtsOptions {
    fn default() -> Self {
        // 2W2S is statically valid; fall back to the single-width default
        // rule rather than panic if the rule constructor ever tightens.
        let rule = Rule::new(2.0, 2.0).unwrap_or_default();
        CtsOptions::new(rule, 120.0, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = CtsOptions::default();
        assert_eq!(o.construction_rule(), Rule::new(2.0, 2.0).unwrap());
        assert_eq!(o.max_stage_cap_ff(), 120.0);
        assert_eq!(o.slew_target_ps(), 100.0);
    }

    #[test]
    fn builders() {
        let o = CtsOptions::default()
            .with_construction_rule(Rule::DEFAULT)
            .with_max_stage_cap_ff(50.0)
            .with_slew_target_ps(60.0);
        assert_eq!(o.construction_rule(), Rule::DEFAULT);
        assert_eq!(o.max_stage_cap_ff(), 50.0);
        assert_eq!(o.slew_target_ps(), 60.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cap_panics() {
        let _ = CtsOptions::new(Rule::DEFAULT, 0.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_slew_panics() {
        let _ = CtsOptions::default().with_slew_target_ps(-1.0);
    }
}
