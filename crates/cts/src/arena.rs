//! CSR-flattened traversal arena over a finished [`ClockTree`].
//!
//! The tree itself threads children through an intrusive sibling list —
//! ideal for O(1) append during construction, but pointer-chasing for the
//! timing kernels that walk the whole tree thousands of times per
//! optimization run. [`TreeArena`] flattens that structure once into
//! compressed-sparse-row (CSR) arrays plus structure-of-arrays copies of
//! the node attributes the hot loops touch, so a traversal is a handful of
//! linear scans over dense `u32`/`f64` slices.
//!
//! Built lazily via [`ClockTree::arena`] and cached on the tree; any
//! structural mutation invalidates the cache.

use crate::{ClockTree, NodeKind};

/// Sentinel in [`TreeArena::parents`] marking the root (no parent).
pub const NO_PARENT: u32 = u32::MAX;

/// Flat, cache-friendly view of a [`ClockTree`]'s structure and the node
/// attributes timing kernels need.
///
/// Children of node `v` occupy `child_list[child_index[v]..child_index[v+1]]`
/// in insertion (= ascending id) order — the same order
/// [`ClockTree::children`] yields, so kernels that gather child
/// contributions sum in the identical floating-point order as sibling-list
/// walks.
///
/// Because `ClockTree` is append-only (a parent always has a smaller id
/// than its children), ascending id order *is* a topological order and
/// descending id order is a postorder; [`TreeArena::topo`] materializes the
/// former so kernels can iterate a dense index slice forwards (topo) or
/// backwards (reverse topo) without recomputing anything.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeArena {
    n: usize,
    root: u32,
    child_index: Vec<u32>,
    child_list: Vec<u32>,
    parent: Vec<u32>,
    topo: Vec<u32>,
    len_um: Vec<f64>,
    /// 0 = Steiner, 1 = sink, 2 = buffer.
    tag: Vec<u8>,
    cap_ff: Vec<f64>,
    cell: Vec<u32>,
    sinks: Vec<u32>,
    buffers: Vec<u32>,
}

const TAG_STEINER: u8 = 0;
const TAG_SINK: u8 = 1;
const TAG_BUFFER: u8 = 2;

impl TreeArena {
    /// Flattens `tree` into CSR + SoA form. O(n); called once per tree by
    /// [`ClockTree::arena`].
    pub(crate) fn build(tree: &ClockTree) -> TreeArena {
        let n = tree.len();
        let mut child_index = vec![0u32; n + 1];
        let mut parent = vec![NO_PARENT; n];
        let mut len_um = vec![0.0f64; n];
        let mut tag = vec![TAG_STEINER; n];
        let mut cap_ff = vec![0.0f64; n];
        let mut cell = vec![u32::MAX; n];
        let mut sinks = Vec::new();
        let mut buffers = Vec::new();

        for node in tree.nodes() {
            let v = node.id().0;
            if let Some(p) = node.parent() {
                parent[v] = p.0 as u32;
                child_index[p.0 + 1] += 1;
            }
            len_um[v] = node.edge_len_nm() as f64 / 1_000.0;
            match node.kind() {
                NodeKind::Sink { cap_ff: c, .. } => {
                    tag[v] = TAG_SINK;
                    cap_ff[v] = c;
                    sinks.push(v as u32);
                }
                NodeKind::Buffer { cell: c } => {
                    tag[v] = TAG_BUFFER;
                    cell[v] = c as u32;
                    buffers.push(v as u32);
                }
                NodeKind::Steiner => {}
            }
        }
        for v in 0..n {
            child_index[v + 1] += child_index[v];
        }
        // Fill grouped by parent. Nodes arrive in ascending id order and a
        // parent's children were appended in ascending id order too, so the
        // per-parent runs come out in insertion order automatically.
        let mut cursor = child_index.clone();
        let mut child_list = vec![0u32; child_index[n] as usize];
        for node in tree.nodes() {
            if let Some(p) = node.parent() {
                child_list[cursor[p.0] as usize] = node.id().0 as u32;
                cursor[p.0] += 1;
            }
        }

        TreeArena {
            n,
            root: tree.root().0 as u32,
            child_index,
            child_list,
            parent,
            topo: (0..n as u32).collect(),
            len_um,
            tag,
            cap_ff,
            cell,
            sinks,
            buffers,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arena is empty (never: trees always have a root).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        self.root as usize
    }

    /// Children of node `v`, in insertion (= ascending id) order.
    pub fn children(&self, v: usize) -> &[u32] {
        &self.child_list[self.child_index[v] as usize..self.child_index[v + 1] as usize]
    }

    /// CSR row index: children of `v` are `child_list()[child_index()[v] ..
    /// child_index()[v+1]]`.
    pub fn child_index(&self) -> &[u32] {
        &self.child_index
    }

    /// CSR child array, grouped by parent.
    pub fn child_list(&self) -> &[u32] {
        &self.child_list
    }

    /// Parent of each node ([`NO_PARENT`] for the root).
    pub fn parents(&self) -> &[u32] {
        &self.parent
    }

    /// Parent of `v`, `None` for the root.
    pub fn parent(&self, v: usize) -> Option<usize> {
        let p = self.parent[v];
        (p != NO_PARENT).then_some(p as usize)
    }

    /// Topological (parent-before-child) node order as a dense index slice.
    ///
    /// Iterate it in reverse for a postorder (child-before-parent) walk.
    pub fn topo(&self) -> &[u32] {
        &self.topo
    }

    /// Routed length of the edge above each node, µm (0 for the root).
    pub fn len_um(&self) -> &[f64] {
        &self.len_um
    }

    /// Whether node `v` is a sink.
    pub fn is_sink(&self, v: usize) -> bool {
        self.tag[v] == TAG_SINK
    }

    /// Whether node `v` is a buffer.
    pub fn is_buffer(&self, v: usize) -> bool {
        self.tag[v] == TAG_BUFFER
    }

    /// Sink pin capacitance of node `v` in fF (0 for non-sinks).
    pub fn sink_cap_ff(&self, v: usize) -> f64 {
        self.cap_ff[v]
    }

    /// Buffer-library cell index of node `v`, `None` for non-buffers.
    pub fn buffer_cell(&self, v: usize) -> Option<usize> {
        (self.tag[v] == TAG_BUFFER).then_some(self.cell[v] as usize)
    }

    /// All sink node indices, ascending.
    pub fn sinks(&self) -> &[u32] {
        &self.sinks
    }

    /// All buffer node indices, ascending.
    pub fn buffers(&self) -> &[u32] {
        &self.buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockTree, NodeId};
    use snr_geom::Point;
    use snr_netlist::SinkId;

    fn sink(i: usize) -> NodeKind {
        NodeKind::Sink { sink: SinkId(i), cap_ff: 1.0 + i as f64 }
    }

    #[test]
    fn csr_matches_sibling_list() {
        let mut t = ClockTree::with_root(Point::new(0, 0), NodeKind::Buffer { cell: 2 });
        let a = t.add_node(NodeKind::Steiner, Point::new(0, 100), t.root(), 100);
        let b = t.add_node(NodeKind::Steiner, Point::new(100, 0), t.root(), 100);
        t.add_node(sink(0), Point::new(0, 200), a, 100);
        t.add_node(sink(1), Point::new(50, 100), a, 50);
        t.add_node(sink(2), Point::new(100, 50), b, 50);

        let arena = t.arena();
        assert_eq!(arena.len(), t.len());
        assert_eq!(arena.root(), 0);
        for id in t.topo_order() {
            let via_links: Vec<u32> = t.children(id).map(|c| c.0 as u32).collect();
            assert_eq!(arena.children(id.0), via_links.as_slice(), "node {id}");
            assert_eq!(arena.parent(id.0), t.node(id).parent().map(|p| p.0));
        }
        assert_eq!(arena.sinks(), &[3, 4, 5]);
        assert_eq!(arena.buffers(), &[0]);
        assert_eq!(arena.buffer_cell(0), Some(2));
        assert_eq!(arena.buffer_cell(1), None);
        assert!((arena.sink_cap_ff(4) - 2.0).abs() < 1e-12);
        assert_eq!(arena.topo(), &[0, 1, 2, 3, 4, 5]);
        assert!((arena.len_um()[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn arena_invalidated_by_mutation() {
        let mut t = ClockTree::with_root(Point::new(0, 0), NodeKind::Steiner);
        let a = t.add_node(sink(0), Point::new(0, 10), t.root(), 10);
        assert_eq!(t.arena().len(), 2);
        t.add_node(sink(1), Point::new(0, 20), a, 10);
        assert_eq!(t.arena().len(), 3);
        assert_eq!(t.arena().children(a.0), &[2]);
    }

    #[test]
    fn clone_rebuilds_arena_after_remap() {
        let mut t = ClockTree::with_root(Point::new(0, 0), NodeKind::Buffer { cell: 3 });
        t.add_node(sink(0), Point::new(0, 10), t.root(), 10);
        assert_eq!(t.arena().buffer_cell(0), Some(3));
        let u = t.with_remapped_buffers(|_, c| c - 1);
        assert_eq!(u.arena().buffer_cell(0), Some(2));
        assert_eq!(NodeId(u.arena().root()), u.root());
    }
}
