//! Per-edge routing-rule assignments.

use crate::{ClockTree, NodeId};
use snr_tech::{RuleId, RuleSet};
use std::fmt;

/// A routing-rule choice for every edge of a [`ClockTree`].
///
/// The edge above each non-root node is addressed by that node's id; the
/// root's slot exists but is ignored by all consumers. An `Assignment` is
/// the *decision variable* of the smart-NDR optimization: the tree and the
/// technology stay fixed while optimizers mutate the assignment.
///
/// # Examples
///
/// ```
/// use snr_cts::{Assignment, ClockTree, NodeKind};
/// use snr_geom::Point;
/// use snr_tech::{RuleSet, RuleId};
///
/// let mut tree = ClockTree::with_root(Point::new(0, 0), NodeKind::Steiner);
/// let child = tree.add_node(
///     NodeKind::Sink { sink: snr_netlist::SinkId(0), cap_ff: 5.0 },
///     Point::new(0, 100), tree.root(), 100,
/// );
/// let rules = RuleSet::standard();
/// let mut asg = Assignment::uniform(&tree, rules.most_conservative_id());
/// assert_eq!(asg.rule(child), rules.most_conservative_id());
/// asg.set(child, rules.default_id());
/// assert_eq!(asg.rule(child), rules.default_id());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    rules: Vec<RuleId>,
}

impl Assignment {
    /// Assigns `rule` to every edge of `tree`.
    pub fn uniform(tree: &ClockTree, rule: RuleId) -> Self {
        Assignment {
            rules: vec![rule; tree.len()],
        }
    }

    /// The rule assigned to the edge above `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the tree this assignment was
    /// built for.
    pub fn rule(&self, node: NodeId) -> RuleId {
        self.rules[node.0]
    }

    /// Sets the rule for the edge above `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set(&mut self, node: NodeId, rule: RuleId) {
        self.rules[node.0] = rule;
    }

    /// Number of slots (equals the tree's node count).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the assignment has no slots.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over `(edge, rule)` pairs for the non-root edges of `tree`.
    pub fn iter_edges<'a>(
        &'a self,
        tree: &'a ClockTree,
    ) -> impl Iterator<Item = (NodeId, RuleId)> + 'a {
        tree.edges().map(move |e| (e, self.rules[e.0]))
    }

    /// Wirelength in µm routed with each rule of `rules`, indexed by rule
    /// id — the data behind the paper's rule-usage breakdown figure.
    pub fn usage_um(&self, tree: &ClockTree, rules: &RuleSet) -> Vec<f64> {
        let mut um = vec![0.0; rules.len()];
        for (e, r) in self.iter_edges(tree) {
            um[r.0] += tree.node(e).edge_len_nm() as f64 / 1_000.0;
        }
        um
    }

    /// Whether every slot holds a rule valid for `rules`.
    pub fn is_valid_for(&self, rules: &RuleSet) -> bool {
        self.rules.iter().all(|r| rules.get(*r).is_some())
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Assignment({} edges)", self.rules.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;
    use snr_geom::Point;
    use snr_netlist::SinkId;

    fn tree2() -> (ClockTree, NodeId, NodeId) {
        let mut t = ClockTree::with_root(Point::new(0, 0), NodeKind::Steiner);
        let a = t.add_node(
            NodeKind::Sink {
                sink: SinkId(0),
                cap_ff: 5.0,
            },
            Point::new(0, 100),
            t.root(),
            100,
        );
        let b = t.add_node(
            NodeKind::Sink {
                sink: SinkId(1),
                cap_ff: 5.0,
            },
            Point::new(100, 0),
            t.root(),
            100,
        );
        (t, a, b)
    }

    #[test]
    fn uniform_and_set() {
        let (t, a, b) = tree2();
        let rules = RuleSet::standard();
        let mut asg = Assignment::uniform(&t, rules.most_conservative_id());
        assert!(asg.is_valid_for(&rules));
        assert_eq!(asg.rule(a), rules.most_conservative_id());
        asg.set(a, rules.default_id());
        assert_eq!(asg.rule(a), rules.default_id());
        assert_eq!(asg.rule(b), rules.most_conservative_id());
    }

    #[test]
    fn usage_accounts_all_wire() {
        let (t, a, _) = tree2();
        let rules = RuleSet::standard();
        let mut asg = Assignment::uniform(&t, rules.default_id());
        asg.set(a, rules.most_conservative_id());
        let usage = asg.usage_um(&t, &rules);
        assert!((usage.iter().sum::<f64>() - 0.2).abs() < 1e-12);
        assert!((usage[rules.most_conservative_id().0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn iter_edges_skips_root() {
        let (t, _, _) = tree2();
        let asg = Assignment::uniform(&t, RuleId(0));
        assert_eq!(asg.iter_edges(&t).count(), 2);
    }

    #[test]
    fn invalid_rule_detected() {
        let (t, a, _) = tree2();
        let rules = RuleSet::standard();
        let mut asg = Assignment::uniform(&t, rules.default_id());
        asg.set(a, RuleId(99));
        assert!(!asg.is_valid_for(&rules));
    }
}
