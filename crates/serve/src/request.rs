//! Typed requests: what a caller asks the flow to do.
//!
//! A [`Request`] is the single entry point shared by the one-shot CLI and
//! the resident daemon: the CLI builds one from flags, the daemon parses
//! one per protocol line. Either way it then goes through
//! [`plan`](crate::plan::plan) and [`execute`](crate::exec::execute) — one
//! code path for one-shot and resident execution.

use crate::error::ApiError;
use crate::json::Json;

/// Where a request's design comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignSource {
    /// A `.sndr` file on disk; read (and content-hashed) at plan time.
    Path(String),
    /// Inline `.sndr` text carried by the request itself.
    Inline(String),
    /// Generate a benchmark on the fly. The design is named
    /// `cli-s{sinks}`, matching what `smart-ndr run --sinks` produces, so
    /// one-shot and resident outputs stay byte-identical.
    Generate {
        /// Number of sinks.
        sinks: usize,
        /// Generator seed.
        seed: u64,
        /// Clock frequency in GHz.
        freq_ghz: f64,
    },
}

/// The technology to run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TechId {
    /// The 45 nm demo technology (default).
    #[default]
    N45,
    /// The 32 nm demo technology.
    N32,
}

impl TechId {
    /// Parses the CLI/protocol spelling.
    pub fn parse(s: &str) -> Result<TechId, ApiError> {
        match s {
            "n45" => Ok(TechId::N45),
            "n32" => Ok(TechId::N32),
            other => Err(ApiError::usage(format!("unknown --tech {other:?} (n45|n32)"))),
        }
    }

    /// Resolves to the concrete technology model.
    pub fn resolve(self) -> snr_tech::Technology {
        match self {
            TechId::N45 => snr_tech::Technology::n45(),
            TechId::N32 => snr_tech::Technology::n32(),
        }
    }

    /// The CLI/protocol spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            TechId::N45 => "n45",
            TechId::N32 => "n32",
        }
    }
}

/// The optimizer a run request uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Best of the two greedy constructions (default, the headline flow).
    #[default]
    Smart,
    /// Sensitivity-ordered downgrades from the conservative start.
    Greedy,
    /// Upgrades from the all-default start until feasible.
    Upgrade,
    /// Conservative near the root, default near the leaves.
    Level,
    /// One conservative rule everywhere.
    Uniform,
    /// Simulated annealing.
    Anneal,
    /// Lagrangian relaxation.
    Lagrangian,
}

impl Method {
    /// Parses the CLI/protocol spelling.
    pub fn parse(s: &str) -> Result<Method, ApiError> {
        match s {
            "smart" => Ok(Method::Smart),
            "greedy" => Ok(Method::Greedy),
            "upgrade" => Ok(Method::Upgrade),
            "level" => Ok(Method::Level),
            "uniform" => Ok(Method::Uniform),
            "anneal" => Ok(Method::Anneal),
            "lagrangian" => Ok(Method::Lagrangian),
            other => Err(ApiError::usage(format!("unknown --method {other:?}"))),
        }
    }

    /// The CLI/protocol spelling (also part of result-store keys).
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Smart => "smart",
            Method::Greedy => "greedy",
            Method::Upgrade => "upgrade",
            Method::Level => "level",
            Method::Uniform => "uniform",
            Method::Anneal => "anneal",
            Method::Lagrangian => "lagrangian",
        }
    }
}

/// Whether a request may consult (and populate) the warm cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Use the cache when one is attached to the execution context.
    #[default]
    On,
    /// Bypass the cache entirely (the `"cache": "off"` escape hatch).
    Off,
}

/// An injected request fault for chaos-testing the daemon's isolation
/// (feature `fault-inject` only; plain builds reject the field).
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeFault {
    /// Panic inside `execute`, after planning succeeded.
    Panic,
    /// Arm [`snr_core::ExecFault::ProbePanic`] on the optimizer context,
    /// exercising the parallel→serial degradation rung inside the daemon.
    ProbePanic(u64),
}

/// A `run` request: the full NDR flow on one design.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// The design to evaluate.
    pub design: DesignSource,
    /// Technology to run under.
    pub tech: TechId,
    /// Optimizer to use.
    pub method: Method,
    /// Slew margin over the conservative baseline (≥ 1).
    pub slew_margin: f64,
    /// Absolute skew budget in ps.
    pub skew_budget_ps: f64,
    /// Monte-Carlo sample count (0 = skip variation analysis).
    pub mc_samples: usize,
    /// Worker threads for Monte Carlo and candidate probes; `None` keeps
    /// each phase's own default (MC auto-detects cores, probes stay
    /// serial).
    pub jobs: Option<usize>,
    /// Cooperative wall-clock deadline in seconds (0 = off).
    pub timeout_s: f64,
    /// Per-phase iteration cap (0 = off).
    pub max_iters: u64,
    /// Cache participation.
    pub cache: CacheMode,
    /// Injected fault (chaos testing only).
    #[cfg(feature = "fault-inject")]
    pub fault: Option<ServeFault>,
}

impl RunRequest {
    /// A request with the CLI's defaults for everything but the design.
    pub fn new(design: DesignSource) -> Self {
        RunRequest {
            design,
            tech: TechId::default(),
            method: Method::default(),
            slew_margin: 1.10,
            skew_budget_ps: 30.0,
            mc_samples: 0,
            jobs: None,
            timeout_s: 0.0,
            max_iters: 0,
            cache: CacheMode::default(),
            #[cfg(feature = "fault-inject")]
            fault: None,
        }
    }
}

/// A `pareto` request: sweep constraint space (slew margin × skew budget
/// / useful-skew window × track budget) and return the non-dominated
/// front over (power, skew, robustness, track cost).
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoRequest {
    /// The design to sweep.
    pub design: DesignSource,
    /// Technology to run under.
    pub tech: TechId,
    /// Slew margins over the conservative baseline (each ≥ 1).
    pub slew_margins: Vec<f64>,
    /// Global skew budgets, ps.
    pub skew_budgets_ps: Vec<f64>,
    /// Useful-skew window half-widths, ps (may be empty).
    pub windows_ps: Vec<f64>,
    /// Track budgets as fractions of the baseline track cost.
    pub track_fracs: Vec<f64>,
    /// Enforce feasibility at the slow/fast corners too.
    pub corners: bool,
    /// Monte-Carlo sample count for the robustness axis (0 = off).
    pub mc_samples: usize,
    /// Worker threads across sweep points; `None` = serial.
    pub jobs: Option<usize>,
    /// Cooperative wall-clock deadline in seconds (0 = off); anytime —
    /// the front over the completed points is returned.
    pub timeout_s: f64,
    /// Deterministic truncation: evaluate only the first N points of the
    /// canonical enumeration (0 = all).
    pub max_points: u64,
    /// Cache participation.
    pub cache: CacheMode,
}

impl ParetoRequest {
    /// A request with the default sweep (the table-5 / fig-9 slices
    /// generalized) for everything but the design.
    pub fn new(design: DesignSource) -> Self {
        let spec = snr_pareto::SweepSpec::default_sweep();
        ParetoRequest {
            design,
            tech: TechId::default(),
            slew_margins: spec.slew_margins,
            skew_budgets_ps: spec.skew_budgets_ps,
            windows_ps: spec.windows_ps,
            track_fracs: spec.track_fracs,
            corners: false,
            mc_samples: snr_pareto::EvalConfig::default().mc_samples,
            jobs: None,
            timeout_s: 0.0,
            max_points: 0,
            cache: CacheMode::default(),
        }
    }
}

/// A `lint` request: validate (and optionally repair) a design without
/// running the flow.
#[derive(Debug, Clone, PartialEq)]
pub struct LintRequest {
    /// The design to validate.
    pub design: DesignSource,
    /// Technology whose bounds the validation uses.
    pub tech: TechId,
    /// Attempt to repair salvageable diagnostics.
    pub repair: bool,
}

/// An `import` request: parse an external DEF-lite/ISPD file into the
/// native design database through the validate → repair → finish
/// pipeline. The hostile-input counterpart of [`LintRequest`]: the bytes
/// are untrusted, so the importer enforces resource limits and reports
/// `I`-series diagnostics instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportRequest {
    /// The DEF-lite file (or inline text) to import.
    pub design: DesignSource,
    /// Technology whose bounds the validation uses.
    pub tech: TechId,
    /// Attempt to repair salvageable diagnostics.
    pub repair: bool,
}

/// An `export_ndr` request: solve (or reimport) a routing-rule assignment
/// for one design and render it as OpenROAD `create_ndr`/`assign_ndr`
/// Tcl. With `from_tcl` set, the named script is parsed back into an
/// assignment instead of solving — the round-trip path interop checks
/// use to prove `import(export(a)) == a`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportNdrRequest {
    /// The design the assignment is for.
    pub design: DesignSource,
    /// Technology to run under.
    pub tech: TechId,
    /// Optimizer producing the assignment (ignored with `from_tcl`).
    pub method: Method,
    /// Slew margin over the conservative baseline (≥ 1).
    pub slew_margin: f64,
    /// Absolute skew budget in ps.
    pub skew_budget_ps: f64,
    /// Path of a previously exported script to reimport instead of
    /// solving.
    pub from_tcl: Option<String>,
}

impl ExportNdrRequest {
    /// A request with the run defaults for everything but the design.
    pub fn new(design: DesignSource) -> Self {
        ExportNdrRequest {
            design,
            tech: TechId::default(),
            method: Method::default(),
            slew_margin: 1.10,
            skew_budget_ps: 30.0,
            from_tcl: None,
        }
    }
}

/// Which designs a `suite` request evaluates.
#[derive(Debug, Clone, PartialEq)]
pub enum SuiteSource {
    /// The built-in 8-design ISPD-like suite.
    Builtin,
    /// Every `.sndr` file in a directory (sorted by name).
    Dir(String),
}

/// A pre-completed suite row carried by a resuming request: rows restored
/// from a journal are returned as-is instead of being re-evaluated.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefilledRow {
    /// Design name (the resume key).
    pub name: String,
    /// The deterministic table line.
    pub line: String,
    /// Optional stderr diagnostic.
    pub diagnostic: Option<String>,
    /// Whether the row had FAILED.
    pub failed: bool,
}

/// A `suite` request: the headline table over many designs.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRequest {
    /// Designs to evaluate.
    pub source: SuiteSource,
    /// Technology to run under.
    pub tech: TechId,
    /// Worker threads across designs; `None` = serial.
    pub jobs: Option<usize>,
    /// Rows already completed by an earlier interrupted run.
    pub prefilled: Vec<PrefilledRow>,
    /// Cache participation (`--no-cache` / `"cache": "off"` bypasses the
    /// per-row result store).
    pub cache: CacheMode,
}

/// A job request: work that goes through plan → execute.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Full flow on one design.
    Run(RunRequest),
    /// Constraint-space sweep returning the Pareto front.
    Pareto(ParetoRequest),
    /// Validation / repair of one design.
    Lint(LintRequest),
    /// The multi-design table.
    Suite(SuiteRequest),
    /// Import an external DEF-lite/ISPD design.
    Import(ImportRequest),
    /// Export (or reimport) an NDR assignment as OpenROAD Tcl.
    ExportNdr(ExportNdrRequest),
}

/// A control operation the daemon answers directly, without scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    /// Report cache, queue and timing statistics.
    Stats,
    /// Cancel a queued or in-flight request by id.
    Cancel {
        /// The id of the request to cancel.
        target: u64,
    },
    /// Stop accepting input; drain the queue and exit.
    Shutdown,
}

/// One parsed protocol line: the request id (required for jobs, optional
/// for control ops) plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Caller-chosen request id, echoed on every response and event line.
    pub id: Option<u64>,
    /// What to do.
    pub op: Op,
}

/// The operation of an [`Envelope`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Schedulable work.
    Job(Request),
    /// Directly-answered control operation.
    Control(Control),
}

fn get_f64(obj: &Json, key: &str, default: f64) -> Result<f64, ApiError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ApiError::usage(format!("field {key:?} must be a number"))),
    }
}

fn get_u64(obj: &Json, key: &str, default: u64) -> Result<u64, ApiError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ApiError::usage(format!("field {key:?} must be a non-negative integer"))),
    }
}

fn get_str<'j>(obj: &'j Json, key: &str) -> Result<Option<&'j str>, ApiError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ApiError::usage(format!("field {key:?} must be a string"))),
    }
}

/// Parses the `design` field of a run/lint request.
fn design_source(obj: &Json) -> Result<DesignSource, ApiError> {
    let Some(design) = obj.get("design") else {
        return Err(ApiError::usage("request needs a \"design\" object"));
    };
    if let Some(path) = get_str(design, "path")? {
        return Ok(DesignSource::Path(path.to_owned()));
    }
    if let Some(text) = get_str(design, "inline")? {
        return Ok(DesignSource::Inline(text.to_owned()));
    }
    if let Some(gen) = design.get("generate") {
        let sinks = get_u64(gen, "sinks", 0)? as usize;
        if sinks == 0 {
            return Err(ApiError::usage("\"generate\" needs a positive \"sinks\" count"));
        }
        let seed = get_u64(gen, "seed", 1)?;
        let freq_ghz = get_f64(gen, "freq_ghz", 1.0)?;
        return Ok(DesignSource::Generate { sinks, seed, freq_ghz });
    }
    Err(ApiError::usage(
        "\"design\" must carry \"path\", \"inline\" or \"generate\"",
    ))
}

/// Parses an optional JSON array of numbers (e.g. `"slew_margins":
/// [1.05, 1.2]`). `None` when the field is absent.
fn f64_list(obj: &Json, key: &str) -> Result<Option<Vec<f64>>, ApiError> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_f64().ok_or_else(|| {
                    ApiError::usage(format!("field {key:?} must contain only numbers"))
                })
            })
            .collect::<Result<Vec<f64>, ApiError>>()
            .map(Some),
        Some(_) => Err(ApiError::usage(format!("field {key:?} must be an array of numbers"))),
    }
}

fn tech_of(obj: &Json) -> Result<TechId, ApiError> {
    match get_str(obj, "tech")? {
        None => Ok(TechId::default()),
        Some(s) => TechId::parse(s),
    }
}

fn jobs_of(obj: &Json) -> Result<Option<usize>, ApiError> {
    match obj.get("jobs") {
        None => Ok(None),
        Some(v) => {
            let n = v
                .as_u64()
                .ok_or_else(|| ApiError::usage("field \"jobs\" must be a non-negative integer"))?;
            if n == 0 {
                return Err(ApiError::usage("\"jobs\" must be at least 1"));
            }
            Ok(Some(n as usize))
        }
    }
}

/// Parses the shared `"cache": "on"|"off"` escape hatch.
fn cache_of(obj: &Json) -> Result<CacheMode, ApiError> {
    match get_str(obj, "cache")? {
        None | Some("on") => Ok(CacheMode::On),
        Some("off") => Ok(CacheMode::Off),
        Some(other) => Err(ApiError::usage(format!("unknown \"cache\" {other:?} (on|off)"))),
    }
}

#[cfg(feature = "fault-inject")]
fn fault_of(obj: &Json) -> Result<Option<ServeFault>, ApiError> {
    match obj.get("fault") {
        None => Ok(None),
        Some(Json::Str(s)) if s == "panic" => Ok(Some(ServeFault::Panic)),
        Some(v) => {
            if let Some(n) = v.get("probe_panic").and_then(Json::as_u64) {
                return Ok(Some(ServeFault::ProbePanic(n)));
            }
            Err(ApiError::usage("unknown \"fault\" (want \"panic\" or {\"probe_panic\": N})"))
        }
    }
}

impl Envelope {
    /// Parses one protocol line (already JSON-parsed) into an envelope.
    ///
    /// # Errors
    ///
    /// [`ApiError::usage`] for a missing/unknown `op`, a job without an
    /// `id`, or any ill-typed field.
    pub fn from_json(v: &Json) -> Result<Envelope, ApiError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(ApiError::usage("protocol line must be a JSON object"));
        }
        let id = match v.get("id") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_u64()
                    .ok_or_else(|| ApiError::usage("field \"id\" must be a non-negative integer"))?,
            ),
        };
        let op = get_str(v, "op")?.ok_or_else(|| ApiError::usage("request needs an \"op\""))?;
        let op = match op {
            "run" => {
                let mut req = RunRequest::new(design_source(v)?);
                req.tech = tech_of(v)?;
                if let Some(m) = get_str(v, "method")? {
                    req.method = Method::parse(m)?;
                }
                req.slew_margin = get_f64(v, "slew_margin", req.slew_margin)?;
                req.skew_budget_ps = get_f64(v, "skew_budget", req.skew_budget_ps)?;
                req.mc_samples = get_u64(v, "mc", 0)? as usize;
                req.jobs = jobs_of(v)?;
                req.timeout_s = get_f64(v, "timeout", 0.0)?;
                req.max_iters = get_u64(v, "max_iters", 0)?;
                req.cache = cache_of(v)?;
                #[cfg(feature = "fault-inject")]
                {
                    req.fault = fault_of(v)?;
                }
                #[cfg(not(feature = "fault-inject"))]
                if v.get("fault").is_some() {
                    return Err(ApiError::usage(
                        "\"fault\" requires a fault-inject build",
                    ));
                }
                Op::Job(Request::Run(req))
            }
            "pareto" => {
                let mut req = ParetoRequest::new(design_source(v)?);
                req.tech = tech_of(v)?;
                if let Some(list) = f64_list(v, "slew_margins")? {
                    req.slew_margins = list;
                }
                if let Some(list) = f64_list(v, "skew_budgets")? {
                    req.skew_budgets_ps = list;
                }
                if let Some(list) = f64_list(v, "windows")? {
                    req.windows_ps = list;
                }
                if let Some(list) = f64_list(v, "track_fracs")? {
                    req.track_fracs = list;
                }
                req.corners = v.get("corners").and_then(Json::as_bool).unwrap_or(false);
                req.mc_samples = get_u64(v, "mc", req.mc_samples as u64)? as usize;
                req.jobs = jobs_of(v)?;
                req.timeout_s = get_f64(v, "timeout", 0.0)?;
                req.max_points = get_u64(v, "max_points", 0)?;
                req.cache = cache_of(v)?;
                Op::Job(Request::Pareto(req))
            }
            "lint" => Op::Job(Request::Lint(LintRequest {
                design: design_source(v)?,
                tech: tech_of(v)?,
                repair: v.get("repair").and_then(Json::as_bool).unwrap_or(false),
            })),
            "import" => Op::Job(Request::Import(ImportRequest {
                design: design_source(v)?,
                tech: tech_of(v)?,
                repair: v.get("repair").and_then(Json::as_bool).unwrap_or(false),
            })),
            "export_ndr" => {
                let mut req = ExportNdrRequest::new(design_source(v)?);
                req.tech = tech_of(v)?;
                if let Some(m) = get_str(v, "method")? {
                    req.method = Method::parse(m)?;
                }
                req.slew_margin = get_f64(v, "slew_margin", req.slew_margin)?;
                req.skew_budget_ps = get_f64(v, "skew_budget", req.skew_budget_ps)?;
                req.from_tcl = get_str(v, "from_tcl")?.map(str::to_owned);
                Op::Job(Request::ExportNdr(req))
            }
            "suite" => Op::Job(Request::Suite(SuiteRequest {
                source: match get_str(v, "designs")? {
                    None => SuiteSource::Builtin,
                    Some(dir) => SuiteSource::Dir(dir.to_owned()),
                },
                tech: tech_of(v)?,
                jobs: jobs_of(v)?,
                prefilled: Vec::new(),
                cache: cache_of(v)?,
            })),
            "stats" => Op::Control(Control::Stats),
            "shutdown" => Op::Control(Control::Shutdown),
            "cancel" => {
                let target = v
                    .get("target")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ApiError::usage("\"cancel\" needs a numeric \"target\" id"))?;
                Op::Control(Control::Cancel { target })
            }
            other => return Err(ApiError::usage(format!("unknown op {other:?}"))),
        };
        if id.is_none() && matches!(op, Op::Job(_)) {
            return Err(ApiError::usage("job requests need an \"id\""));
        }
        Ok(Envelope { id, op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_run_request() {
        let v = Json::parse(r#"{"id": 1, "op": "run", "design": {"generate": {"sinks": 40}}}"#)
            .unwrap();
        let env = Envelope::from_json(&v).unwrap();
        assert_eq!(env.id, Some(1));
        let Op::Job(Request::Run(req)) = env.op else { panic!("expected run") };
        assert_eq!(req.design, DesignSource::Generate { sinks: 40, seed: 1, freq_ghz: 1.0 });
        assert_eq!(req.method, Method::Smart);
        assert_eq!(req.cache, CacheMode::On);
    }

    #[test]
    fn parses_a_pareto_request() {
        let v = Json::parse(
            r#"{"id": 2, "op": "pareto", "design": {"generate": {"sinks": 60}},
                "slew_margins": [1.05, 1.2], "skew_budgets": [15, 60], "windows": [],
                "track_fracs": [0.8], "corners": true, "mc": 4, "max_points": 3}"#,
        )
        .unwrap();
        let env = Envelope::from_json(&v).unwrap();
        let Op::Job(Request::Pareto(req)) = env.op else { panic!("expected pareto") };
        assert_eq!(req.slew_margins, vec![1.05, 1.2]);
        assert_eq!(req.skew_budgets_ps, vec![15.0, 60.0]);
        assert!(req.windows_ps.is_empty());
        assert_eq!(req.track_fracs, vec![0.8]);
        assert!(req.corners);
        assert_eq!(req.mc_samples, 4);
        assert_eq!(req.max_points, 3);
    }

    #[test]
    fn pareto_defaults_are_the_default_sweep() {
        let v = Json::parse(r#"{"id": 3, "op": "pareto", "design": {"inline": "x"}}"#).unwrap();
        let Op::Job(Request::Pareto(req)) = Envelope::from_json(&v).unwrap().op else {
            panic!("expected pareto")
        };
        let spec = snr_pareto::SweepSpec::default_sweep();
        assert_eq!(req.slew_margins, spec.slew_margins);
        assert_eq!(req.skew_budgets_ps, spec.skew_budgets_ps);
        assert_eq!(req.windows_ps, spec.windows_ps);
        assert!(!req.corners);
    }

    #[test]
    fn pareto_list_fields_must_be_numeric_arrays() {
        for line in [
            r#"{"id": 1, "op": "pareto", "design": {"inline": "x"}, "slew_margins": "1.1"}"#,
            r#"{"id": 1, "op": "pareto", "design": {"inline": "x"}, "windows": [true]}"#,
        ] {
            let v = Json::parse(line).unwrap();
            assert!(Envelope::from_json(&v).is_err(), "{line} should fail");
        }
    }

    #[test]
    fn parses_import_and_export_ndr_requests() {
        let v = Json::parse(
            r#"{"id": 4, "op": "import", "design": {"inline": "DESIGN x ;"}, "repair": true}"#,
        )
        .unwrap();
        let Op::Job(Request::Import(req)) = Envelope::from_json(&v).unwrap().op else {
            panic!("expected import")
        };
        assert!(req.repair);

        let v = Json::parse(
            r#"{"id": 5, "op": "export_ndr", "design": {"path": "d.sndr"},
                "method": "greedy", "from_tcl": "ndr.tcl"}"#,
        )
        .unwrap();
        let Op::Job(Request::ExportNdr(req)) = Envelope::from_json(&v).unwrap().op else {
            panic!("expected export_ndr")
        };
        assert_eq!(req.method, Method::Greedy);
        assert_eq!(req.from_tcl.as_deref(), Some("ndr.tcl"));
    }

    #[test]
    fn import_and_export_ndr_reject_ill_typed_fields() {
        for line in [
            r#"{"id": 1, "op": "import"}"#,
            r#"{"id": 1, "op": "import", "design": {"inline": "x"}, "tech": 42}"#,
            r#"{"id": 1, "op": "export_ndr", "design": {"inline": "x"}, "method": "bogus"}"#,
            r#"{"id": 1, "op": "export_ndr", "design": {"inline": "x"}, "from_tcl": 3}"#,
            r#"{"id": 1, "op": "export_ndr", "design": {"inline": "x"}, "slew_margin": "wide"}"#,
        ] {
            let v = Json::parse(line).unwrap();
            assert!(Envelope::from_json(&v).is_err(), "{line} should fail");
        }
    }

    #[test]
    fn job_without_id_is_a_usage_error() {
        let v = Json::parse(r#"{"op": "run", "design": {"inline": "x"}}"#).unwrap();
        let err = Envelope::from_json(&v).unwrap_err();
        assert_eq!(err.code(), crate::ApiCode::Usage);
    }

    #[test]
    fn control_ops_parse_without_id() {
        for (line, want) in [
            (r#"{"op": "stats"}"#, Control::Stats),
            (r#"{"op": "shutdown"}"#, Control::Shutdown),
            (r#"{"op": "cancel", "target": 3}"#, Control::Cancel { target: 3 }),
        ] {
            let env = Envelope::from_json(&Json::parse(line).unwrap()).unwrap();
            assert_eq!(env.op, Op::Control(want));
        }
    }

    #[test]
    fn bad_fields_are_usage_errors() {
        for line in [
            r#"{"id": 1, "op": "run"}"#,
            r#"{"id": 1, "op": "run", "design": {}}"#,
            r#"{"id": 1, "op": "run", "design": {"inline": "x"}, "tech": "n99"}"#,
            r#"{"id": 1, "op": "run", "design": {"inline": "x"}, "jobs": 0}"#,
            r#"{"id": 1, "op": "run", "design": {"inline": "x"}, "cache": "maybe"}"#,
            r#"{"id": 1, "op": "frobnicate"}"#,
            r#"[1, 2]"#,
        ] {
            let v = Json::parse(line).unwrap();
            assert!(Envelope::from_json(&v).is_err(), "{line} should fail");
        }
    }
}
