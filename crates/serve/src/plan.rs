//! Plan construction: resolving a [`Request`] into an explicit,
//! self-contained [`Plan`].
//!
//! Planning does everything that touches the outside world *once*: it
//! reads design files into bytes, lists suite directories, resolves the
//! technology, validates numeric fields, and computes the content-hash
//! [`CacheKey`]. What comes out is a value the executor can run without
//! further I/O decisions — the same plan executes identically one-shot or
//! inside the daemon, and identical inputs produce identical cache keys.

use std::collections::HashMap;
use std::fs;
use std::io::BufReader;

use snr_netlist::{ispd_like_suite, load_design, Design};
use snr_par::Parallelism;
use snr_tech::Technology;

use snr_pareto::{EvalConfig, SkewAxis, SweepPoint, SweepSpec};

use crate::cache::{CacheKey, ContentHasher};
use crate::error::ApiError;
use crate::request::{
    CacheMode, DesignSource, ExportNdrRequest, ImportRequest, LintRequest, Method,
    ParetoRequest, Request, RunRequest, SuiteRequest, SuiteSource, TechId,
};

/// Fingerprint of the CTS options a plan bakes in. There is exactly one
/// configuration today (`CtsOptions::default()`); the constant keeps the
/// cache key honest if that ever changes.
pub(crate) const CTS_OPTIONS_FINGERPRINT: &str = "cts-default-v1";

/// The design input a plan carries: raw bytes to parse, or a generator
/// spec to build.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignInput {
    /// Raw `.sndr` bytes (from a file or inline text).
    Bytes(Vec<u8>),
    /// A benchmark-generator spec.
    Spec {
        /// Design name.
        name: String,
        /// Number of sinks.
        sinks: usize,
        /// Generator seed.
        seed: u64,
        /// Clock frequency in GHz.
        freq_ghz: f64,
    },
}

/// A resolved `run` request.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Content-hash key for the warm cache.
    pub key: CacheKey,
    /// Content-hash key for the durable result store: [`Self::key`]
    /// extended with every option that changes the rendered result.
    /// `jobs` is deliberately excluded (results are bit-identical for
    /// every job count) and so is `timeout_s` (runs under a wall-clock
    /// deadline are never saved, because what they complete is
    /// nondeterministic).
    pub result_key: CacheKey,
    /// The design to parse or generate.
    pub input: DesignInput,
    /// Resolved technology model.
    pub tech: Technology,
    /// Optimizer to run.
    pub method: Method,
    /// Slew margin over the conservative baseline.
    pub slew_margin: f64,
    /// Absolute skew budget in ps.
    pub skew_budget_ps: f64,
    /// Monte-Carlo sample count (0 = off).
    pub mc_samples: usize,
    /// Worker threads; `None` keeps per-phase defaults.
    pub jobs: Option<Parallelism>,
    /// Wall-clock deadline in seconds (0 = off).
    pub timeout_s: f64,
    /// Per-phase iteration cap (0 = off).
    pub max_iters: u64,
    /// Cache participation.
    pub cache: CacheMode,
    /// Injected fault (chaos testing only).
    #[cfg(feature = "fault-inject")]
    pub fault: Option<crate::request::ServeFault>,
}

/// A resolved `pareto` request: the enumerated sweep plus everything one
/// point evaluation needs.
#[derive(Debug, Clone)]
pub struct ParetoPlan {
    /// Content-hash key for the warm parse+CTS cache (same key space as
    /// [`RunPlan::key`] — a sweep warms the cache for later runs).
    pub key: CacheKey,
    /// The design to parse or generate.
    pub input: DesignInput,
    /// Resolved technology model.
    pub tech: Technology,
    /// The validated sweep axes.
    pub spec: SweepSpec,
    /// The canonical point enumeration (indices are stable names).
    pub points: Vec<SweepPoint>,
    /// Sweep-wide evaluation knobs (seeds, MC samples, corners).
    pub eval: EvalConfig,
    /// Worker threads across points; `None` = serial.
    pub jobs: Option<Parallelism>,
    /// Wall-clock deadline in seconds (0 = off).
    pub timeout_s: f64,
    /// Deterministic prefix truncation (0 = all points).
    pub max_points: u64,
    /// Cache participation.
    pub cache: CacheMode,
}

impl ParetoPlan {
    /// The durable-store key of one sweep point: the warm key plus every
    /// knob that shapes the point's objective vector. `jobs`, `timeout_s`
    /// and `max_points` are deliberately excluded — they change *which*
    /// points get evaluated, never a point's value — so a truncated or
    /// killed sweep re-uses every point it completed.
    pub fn point_key(&self, point: &SweepPoint) -> CacheKey {
        let mut h = ContentHasher::new();
        h.chunk(b"pareto-point-v1")
            .chunk(&self.key.0.to_le_bytes())
            .chunk(&[u8::from(self.eval.corners)])
            .chunk(&(self.eval.mc_samples as u64).to_le_bytes())
            .chunk(&self.eval.mc_seed.to_le_bytes())
            .chunk(&self.eval.relaxed_skew_budget_ps.to_bits().to_le_bytes())
            .chunk(&self.eval.arc_seed.to_le_bytes())
            .chunk(&(self.eval.max_arcs as u64).to_le_bytes())
            .chunk(&point.slew_margin.to_bits().to_le_bytes());
        match point.skew {
            SkewAxis::Global { budget_ps } => {
                h.chunk(b"global").chunk(&budget_ps.to_bits().to_le_bytes());
            }
            SkewAxis::Window { window_ps } => {
                h.chunk(b"window").chunk(&window_ps.to_bits().to_le_bytes());
            }
        }
        match point.track_frac {
            None => {
                h.chunk(b"track-none");
            }
            Some(frac) => {
                h.chunk(b"track-frac").chunk(&frac.to_bits().to_le_bytes());
            }
        }
        h.finish()
    }
}

/// A resolved `lint` request.
#[derive(Debug, Clone)]
pub struct LintPlan {
    /// Raw `.sndr` bytes to validate.
    pub bytes: Vec<u8>,
    /// Resolved technology (bounds source).
    pub tech: Technology,
    /// Attempt repair.
    pub repair: bool,
}

/// A resolved `import` request. The bytes are untrusted — execution hands
/// them to the bounded DEF-lite importer, never the `.sndr` parser.
#[derive(Debug, Clone)]
pub struct ImportPlan {
    /// Raw DEF-lite bytes to import.
    pub bytes: Vec<u8>,
    /// Resolved technology (bounds source).
    pub tech: Technology,
    /// Attempt repair.
    pub repair: bool,
}

/// A resolved `export_ndr` request.
#[derive(Debug, Clone)]
pub struct ExportNdrPlan {
    /// Content-hash key for the warm parse+CTS cache (same key space as
    /// [`RunPlan::key`]).
    pub key: CacheKey,
    /// The design to parse or generate.
    pub input: DesignInput,
    /// Resolved technology model.
    pub tech: Technology,
    /// Optimizer producing the assignment (ignored with `from_tcl`).
    pub method: Method,
    /// Slew margin over the conservative baseline.
    pub slew_margin: f64,
    /// Absolute skew budget in ps.
    pub skew_budget_ps: f64,
    /// Text of a previously exported script to reimport, read at plan
    /// time like design bytes.
    pub from_tcl: Option<String>,
}

/// One suite entry: either a loaded design or a load failure to report as
/// a `FAILED` row.
#[derive(Debug, Clone)]
pub enum SuiteEntry {
    /// A loadable design.
    Design(Box<Design>),
    /// A file that would not load; becomes a `FAILED` row.
    Unloadable {
        /// Design name (file stem).
        name: String,
        /// Why it would not load.
        reason: String,
    },
}

impl SuiteEntry {
    /// The design name this entry answers to (the resume key).
    pub fn name(&self) -> &str {
        match self {
            SuiteEntry::Design(d) => d.name(),
            SuiteEntry::Unloadable { name, .. } => name,
        }
    }
}

/// A resolved `suite` request.
#[derive(Debug, Clone)]
pub struct SuitePlan {
    /// The designs to evaluate, in table order.
    pub entries: Vec<SuiteEntry>,
    /// Resolved technology model.
    pub tech: Technology,
    /// Cross-design parallelism.
    pub par: Parallelism,
    /// Rows restored from a journal, keyed by design name; these are
    /// returned as-is (and not re-journaled via events).
    pub prefilled: HashMap<String, crate::exec::SuiteRow>,
    /// Cache participation: `Off` bypasses the per-row result store.
    pub cache: CacheMode,
}

/// An executable plan: the output of [`plan`], the input of
/// [`execute`](crate::exec::execute).
#[derive(Debug, Clone)]
pub enum Plan {
    /// Full flow on one design.
    Run(RunPlan),
    /// Constraint-space sweep returning the Pareto front.
    Pareto(ParetoPlan),
    /// Validation / repair.
    Lint(LintPlan),
    /// The multi-design table.
    Suite(SuitePlan),
    /// External DEF-lite import.
    Import(ImportPlan),
    /// NDR Tcl export / reimport.
    ExportNdr(ExportNdrPlan),
}

/// Reads the bytes behind a design source; `Generate` has no bytes.
fn source_bytes(source: &DesignSource) -> Result<Option<Vec<u8>>, ApiError> {
    match source {
        DesignSource::Path(path) => fs::read(path)
            .map(Some)
            .map_err(|e| ApiError::invalid(format!("cannot open {path}: {e}"))),
        DesignSource::Inline(text) => Ok(Some(text.clone().into_bytes())),
        DesignSource::Generate { .. } => Ok(None),
    }
}

/// The content-hash key for a run over `input` under `tech`.
fn run_key(input: &DesignInput, tech: &Technology) -> CacheKey {
    let mut h = ContentHasher::new();
    match input {
        DesignInput::Bytes(bytes) => {
            h.chunk(b"design-bytes").chunk(bytes);
        }
        DesignInput::Spec { name, sinks, seed, freq_ghz } => {
            h.chunk(b"design-spec")
                .chunk(name.as_bytes())
                .chunk(&(*sinks as u64).to_le_bytes())
                .chunk(&seed.to_le_bytes())
                .chunk(&freq_ghz.to_bits().to_le_bytes());
        }
    }
    h.chunk(b"tech").chunk(tech.name().as_bytes());
    h.chunk(b"cts").chunk(CTS_OPTIONS_FINGERPRINT.as_bytes());
    h.finish()
}

/// The result-store key: the warm key plus every request option that
/// shapes the rendered result.
fn result_key(warm_key: CacheKey, req: &RunRequest) -> CacheKey {
    ContentHasher::new()
        .chunk(b"result-v1")
        .chunk(&warm_key.0.to_le_bytes())
        .chunk(req.method.as_str().as_bytes())
        .chunk(&req.slew_margin.to_bits().to_le_bytes())
        .chunk(&req.skew_budget_ps.to_bits().to_le_bytes())
        .chunk(&(req.mc_samples as u64).to_le_bytes())
        .chunk(&req.max_iters.to_le_bytes())
        .finish()
}

fn design_input(source: &DesignSource) -> Result<DesignInput, ApiError> {
    Ok(match source_bytes(source)? {
        Some(bytes) => DesignInput::Bytes(bytes),
        None => {
            let DesignSource::Generate { sinks, seed, freq_ghz } = source else {
                unreachable!("only Generate has no bytes")
            };
            DesignInput::Spec {
                // The same name `smart-ndr run --sinks N` has always used,
                // so generated one-shot and resident runs stay identical.
                name: format!("cli-s{sinks}"),
                sinks: *sinks,
                seed: *seed,
                freq_ghz: *freq_ghz,
            }
        }
    })
}

fn plan_run(req: &RunRequest) -> Result<RunPlan, ApiError> {
    if !req.timeout_s.is_finite() || req.timeout_s < 0.0 {
        return Err(ApiError::usage(format!(
            "--timeout must be >= 0 seconds, got {}",
            req.timeout_s
        )));
    }
    let input = design_input(&req.design)?;
    let tech = req.tech.resolve();
    let key = run_key(&input, &tech);
    Ok(RunPlan {
        key,
        result_key: result_key(key, req),
        input,
        tech,
        method: req.method,
        slew_margin: req.slew_margin,
        skew_budget_ps: req.skew_budget_ps,
        mc_samples: req.mc_samples,
        jobs: req.jobs.map(Parallelism::new),
        timeout_s: req.timeout_s,
        max_iters: req.max_iters,
        cache: req.cache,
        #[cfg(feature = "fault-inject")]
        fault: req.fault,
    })
}

fn plan_pareto(req: &ParetoRequest) -> Result<ParetoPlan, ApiError> {
    if !req.timeout_s.is_finite() || req.timeout_s < 0.0 {
        return Err(ApiError::usage(format!(
            "--timeout must be >= 0 seconds, got {}",
            req.timeout_s
        )));
    }
    let spec = SweepSpec {
        slew_margins: req.slew_margins.clone(),
        skew_budgets_ps: req.skew_budgets_ps.clone(),
        windows_ps: req.windows_ps.clone(),
        track_fracs: req.track_fracs.clone(),
    };
    spec.validate().map_err(ApiError::usage)?;
    let input = design_input(&req.design)?;
    let tech = req.tech.resolve();
    let key = run_key(&input, &tech);
    let points = spec.enumerate();
    let eval = EvalConfig {
        mc_samples: req.mc_samples,
        corners: req.corners,
        ..EvalConfig::default()
    };
    Ok(ParetoPlan {
        key,
        input,
        tech,
        spec,
        points,
        eval,
        jobs: req.jobs.map(Parallelism::new),
        timeout_s: req.timeout_s,
        max_points: req.max_points,
        cache: req.cache,
    })
}

fn plan_lint(req: &LintRequest) -> Result<LintPlan, ApiError> {
    let Some(bytes) = source_bytes(&req.design)? else {
        return Err(ApiError::usage("lint needs a design file or inline text"));
    };
    Ok(LintPlan { bytes, tech: req.tech.resolve(), repair: req.repair })
}

fn plan_import(req: &ImportRequest) -> Result<ImportPlan, ApiError> {
    let Some(bytes) = source_bytes(&req.design)? else {
        return Err(ApiError::usage("import needs a design file or inline text"));
    };
    Ok(ImportPlan { bytes, tech: req.tech.resolve(), repair: req.repair })
}

fn plan_export_ndr(req: &ExportNdrRequest) -> Result<ExportNdrPlan, ApiError> {
    let input = design_input(&req.design)?;
    let tech = req.tech.resolve();
    let key = run_key(&input, &tech);
    let from_tcl = match &req.from_tcl {
        None => None,
        Some(path) => Some(fs::read_to_string(path).map_err(|e| {
            ApiError::invalid(format!("cannot open {path}: {e}"))
        })?),
    };
    Ok(ExportNdrPlan {
        key,
        input,
        tech,
        method: req.method,
        slew_margin: req.slew_margin,
        skew_budget_ps: req.skew_budget_ps,
        from_tcl,
    })
}

/// Lists and pre-loads the designs of a suite request, preserving the
/// established contract: `.sndr` files sorted by name, unloadable files
/// becoming `FAILED` rows rather than failing the suite.
fn suite_entries(source: &SuiteSource) -> Result<Vec<SuiteEntry>, ApiError> {
    let dir = match source {
        SuiteSource::Builtin => {
            return Ok(ispd_like_suite()
                .into_iter()
                .map(|d| SuiteEntry::Design(Box::new(d)))
                .collect());
        }
        SuiteSource::Dir(dir) => dir,
    };
    let mut paths: Vec<std::path::PathBuf> = fs::read_dir(dir)
        .map_err(|e| ApiError::invalid(format!("cannot read {dir}: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "sndr"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(ApiError::invalid(format!("no .sndr files in {dir}")));
    }
    Ok(paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.display().to_string());
            let load = fs::File::open(&p)
                .map_err(|e| format!("cannot open {}: {e}", p.display()))
                .and_then(|f| load_design(BufReader::new(f)).map_err(|e| e.to_string()));
            match load {
                Ok(d) => SuiteEntry::Design(Box::new(d)),
                Err(reason) => SuiteEntry::Unloadable { name, reason },
            }
        })
        .collect())
}

fn plan_suite(req: &SuiteRequest) -> Result<SuitePlan, ApiError> {
    let entries = suite_entries(&req.source)?;
    let prefilled = req
        .prefilled
        .iter()
        .map(|row| {
            (
                row.name.clone(),
                crate::exec::SuiteRow {
                    name: row.name.clone(),
                    line: row.line.clone(),
                    diagnostic: row.diagnostic.clone(),
                    runtime_s: None,
                    failed: row.failed,
                },
            )
        })
        .collect();
    Ok(SuitePlan {
        entries,
        tech: req.tech.resolve(),
        par: req.jobs.map(Parallelism::new).unwrap_or_else(Parallelism::serial),
        prefilled,
        cache: req.cache,
    })
}

/// Resolves a request into an executable plan.
///
/// # Errors
///
/// [`ApiError::usage`] for invalid fields, [`ApiError::invalid`] for
/// unreadable inputs. Parse and synthesis failures are *execution*
/// results, not planning failures — planning never parses a design.
pub fn plan(req: &Request) -> Result<Plan, ApiError> {
    match req {
        Request::Run(r) => plan_run(r).map(Plan::Run),
        Request::Pareto(r) => plan_pareto(r).map(Plan::Pareto),
        Request::Lint(r) => plan_lint(r).map(Plan::Lint),
        Request::Suite(r) => plan_suite(r).map(Plan::Suite),
        Request::Import(r) => plan_import(r).map(Plan::Import),
        Request::ExportNdr(r) => plan_export_ndr(r).map(Plan::ExportNdr),
    }
}

/// The `TechId` spelled in a plan's technology. Convenience for renderers.
pub fn tech_id_of(tech: &Technology) -> TechId {
    if tech.name() == Technology::n32().name() {
        TechId::N32
    } else {
        TechId::N45
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_req(sinks: usize, seed: u64) -> RunRequest {
        RunRequest::new(DesignSource::Generate { sinks, seed, freq_ghz: 1.0 })
    }

    #[test]
    fn identical_requests_share_a_cache_key() {
        let a = plan_run(&gen_req(40, 2)).unwrap();
        let b = plan_run(&gen_req(40, 2)).unwrap();
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn key_separates_design_tech_and_seed() {
        let base = plan_run(&gen_req(40, 2)).unwrap();
        assert_ne!(base.key, plan_run(&gen_req(40, 3)).unwrap().key);
        assert_ne!(base.key, plan_run(&gen_req(41, 2)).unwrap().key);
        let mut n32 = gen_req(40, 2);
        n32.tech = TechId::N32;
        assert_ne!(base.key, plan_run(&n32).unwrap().key);
    }

    #[test]
    fn result_key_tracks_result_shaping_options_only() {
        let base = plan_run(&gen_req(40, 2)).unwrap();
        let mut other_method = gen_req(40, 2);
        other_method.method = Method::Greedy;
        let greedy = plan_run(&other_method).unwrap();
        assert_eq!(base.key, greedy.key, "warm key ignores the optimizer");
        assert_ne!(base.result_key, greedy.result_key, "result key must not");
        let mut more_jobs = gen_req(40, 2);
        more_jobs.jobs = Some(4);
        assert_eq!(
            base.result_key,
            plan_run(&more_jobs).unwrap().result_key,
            "results are bit-identical per job count, so jobs is excluded"
        );
    }

    #[test]
    fn pareto_point_keys_ignore_scheduling_knobs() {
        let req = |jobs, timeout_s, max_points| {
            let mut r = ParetoRequest::new(DesignSource::Generate {
                sinks: 40,
                seed: 2,
                freq_ghz: 1.0,
            });
            r.jobs = jobs;
            r.timeout_s = timeout_s;
            r.max_points = max_points;
            r
        };
        let base = plan_pareto(&req(None, 0.0, 0)).unwrap();
        let truncated = plan_pareto(&req(Some(8), 30.0, 2)).unwrap();
        assert_eq!(base.points.len(), truncated.points.len());
        for (a, b) in base.points.iter().zip(&truncated.points) {
            assert_eq!(base.point_key(a), truncated.point_key(b));
        }
        // Every point of one sweep has a distinct identity.
        let mut keys: Vec<u64> = base.points.iter().map(|p| base.point_key(p).0).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), base.points.len());
    }

    #[test]
    fn pareto_point_keys_track_evaluation_shaping_knobs() {
        let mut r = ParetoRequest::new(DesignSource::Generate {
            sinks: 40,
            seed: 2,
            freq_ghz: 1.0,
        });
        let base = plan_pareto(&r).unwrap();
        r.mc_samples += 1;
        let more_mc = plan_pareto(&r).unwrap();
        r.mc_samples -= 1;
        r.corners = true;
        let corners = plan_pareto(&r).unwrap();
        assert_ne!(base.point_key(&base.points[0]), more_mc.point_key(&more_mc.points[0]));
        assert_ne!(base.point_key(&base.points[0]), corners.point_key(&corners.points[0]));
    }

    #[test]
    fn pareto_rejects_invalid_axes() {
        let mut r = ParetoRequest::new(DesignSource::Generate {
            sinks: 40,
            seed: 2,
            freq_ghz: 1.0,
        });
        r.slew_margins = vec![0.5];
        assert_eq!(plan_pareto(&r).unwrap_err().code(), crate::ApiCode::Usage);
    }

    #[test]
    fn inline_and_path_bytes_share_a_key() {
        let text = "sndr 1\ndesign d freq_ghz 1.0\ndie 0 0 1 1\nroot 0 0\nend\n";
        let dir = std::env::temp_dir();
        let path = dir.join(format!("snr-serve-plan-{}.sndr", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let from_path = plan_run(&RunRequest::new(DesignSource::Path(
            path.to_string_lossy().into_owned(),
        )))
        .unwrap();
        let from_inline =
            plan_run(&RunRequest::new(DesignSource::Inline(text.to_owned()))).unwrap();
        assert_eq!(from_path.key, from_inline.key, "key hashes content, not origin");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_invalid_input() {
        let err = plan(&Request::Run(RunRequest::new(DesignSource::Path(
            "/nonexistent/nope.sndr".into(),
        ))))
        .unwrap_err();
        assert_eq!(err.code(), crate::ApiCode::InvalidInput);
    }

    #[test]
    fn export_ndr_shares_the_run_warm_key() {
        let run = plan_run(&gen_req(40, 2)).unwrap();
        let export = plan_export_ndr(&ExportNdrRequest::new(DesignSource::Generate {
            sinks: 40,
            seed: 2,
            freq_ghz: 1.0,
        }))
        .unwrap();
        assert_eq!(run.key, export.key, "an export warms the same cache slot as a run");
    }

    #[test]
    fn export_ndr_missing_tcl_is_invalid_input() {
        let mut req = ExportNdrRequest::new(DesignSource::Generate {
            sinks: 40,
            seed: 2,
            freq_ghz: 1.0,
        });
        req.from_tcl = Some("/nonexistent/ndr.tcl".into());
        let err = plan(&Request::ExportNdr(req)).unwrap_err();
        assert_eq!(err.code(), crate::ApiCode::InvalidInput);
    }

    #[test]
    fn import_needs_bytes() {
        let err = plan_import(&ImportRequest {
            design: DesignSource::Generate { sinks: 4, seed: 1, freq_ghz: 1.0 },
            tech: TechId::N45,
            repair: false,
        })
        .unwrap_err();
        assert_eq!(err.code(), crate::ApiCode::Usage);
    }

    #[test]
    fn negative_timeout_is_a_usage_error() {
        let mut req = gen_req(40, 2);
        req.timeout_s = -1.0;
        assert_eq!(plan_run(&req).unwrap_err().code(), crate::ApiCode::Usage);
    }
}
