//! The warm parse+CTS cache: the first slice of content-addressed
//! memoization (ROADMAP item 2).
//!
//! Production traffic repeats: the same design bytes under the same
//! technology should be parsed and synthesized once per daemon lifetime,
//! not once per request. Entries are keyed by a content hash of
//! *(design bytes or generator spec, technology, CTS options)* — hashing
//! the bytes (not the path) means a re-saved identical file still hits,
//! and an edited file misses, with no mtime games.
//!
//! The cache holds `Arc`s, so concurrent requests share one parsed
//! [`Design`] and one synthesized [`ClockTree`] without copying; eviction
//! is oldest-insertion-first once the entry cap is reached.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use snr_cts::ClockTree;
use snr_netlist::Design;

// The content-hash primitives moved down into `snr-store` (the disk
// layer keys entries with them too); re-exported here so every existing
// `crate::cache::{CacheKey, ContentHasher}` import keeps working.
pub use snr_store::{CacheKey, ContentHasher};

/// One warm entry: the parsed design and its synthesized clock tree,
/// shared by reference with every request that hits.
#[derive(Debug)]
pub struct Warm {
    /// The parsed (or generated) design.
    pub design: Arc<Design>,
    /// The synthesized clock tree for that design under the entry's
    /// technology and CTS options.
    pub tree: Arc<ClockTree>,
}

/// How a request interacted with the cache; surfaced in the daemon's
/// response envelope and aggregated into `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from a warm entry: parse+CTS skipped.
    Hit,
    /// Computed and inserted.
    Miss,
    /// The request opted out (`"cache": "off"`) or no cache was attached
    /// (one-shot CLI execution).
    Off,
    /// Replayed from the durable result store: parse, CTS *and*
    /// optimization skipped.
    StoreHit,
}

impl CacheStatus {
    /// The protocol spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Off => "off",
            CacheStatus::StoreHit => "store_hit",
        }
    }
}

/// The warm cache plus its hit/miss counters.
#[derive(Debug)]
pub struct WarmCache {
    entries: HashMap<CacheKey, Arc<Warm>>,
    /// Insertion order for eviction.
    order: VecDeque<CacheKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl WarmCache {
    /// A cache bounded at `capacity` entries (≥ 1).
    pub fn new(capacity: usize) -> Self {
        WarmCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key`, counting a hit or a miss.
    pub fn lookup(&mut self, key: CacheKey) -> Option<Arc<Warm>> {
        match self.entries.get(&key) {
            Some(warm) => {
                self.hits += 1;
                Some(Arc::clone(warm))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an entry computed after a miss, evicting the oldest entry
    /// when full. A concurrent duplicate insert keeps the existing entry.
    pub fn insert(&mut self, key: CacheKey, warm: Arc<Warm>) {
        if self.entries.contains_key(&key) {
            return;
        }
        while self.entries.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.entries.remove(&old);
                }
                None => break,
            }
        }
        self.entries.insert(key, warm);
        self.order.push_back(key);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snr_cts::{synthesize, CtsOptions};
    use snr_netlist::BenchmarkSpec;
    use snr_tech::Technology;

    fn warm(sinks: usize) -> Arc<Warm> {
        let design = BenchmarkSpec::new("t", sinks).seed(1).build().unwrap();
        let tech = Technology::n45();
        let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();
        Arc::new(Warm { design: Arc::new(design), tree: Arc::new(tree) })
    }

    #[test]
    fn content_hash_separates_chunks_and_is_stable() {
        let a = ContentHasher::new().chunk(b"ab").chunk(b"c").finish();
        let b = ContentHasher::new().chunk(b"a").chunk(b"bc").finish();
        assert_ne!(a, b);
        let again = ContentHasher::new().chunk(b"ab").chunk(b"c").finish();
        assert_eq!(a, again);
    }

    #[test]
    fn hit_miss_counting_and_eviction() {
        let mut cache = WarmCache::new(2);
        let (k1, k2, k3) = (CacheKey(1), CacheKey(2), CacheKey(3));
        assert!(cache.lookup(k1).is_none());
        cache.insert(k1, warm(24));
        cache.insert(k2, warm(24));
        assert!(cache.lookup(k1).is_some());
        cache.insert(k3, warm(24)); // evicts k1 (oldest)
        assert!(cache.lookup(k1).is_none());
        assert!(cache.lookup(k3).is_some());
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }
}
