//! A minimal, dependency-free JSON value: parser and writer.
//!
//! The serve protocol is line-delimited JSON; the workspace deliberately
//! carries no third-party dependencies, so this module implements the
//! subset of JSON the protocol needs — full parsing of any well-formed
//! value, and string escaping for the hand-assembled writers in
//! [`crate::render`].
//!
//! Numbers are held as `f64` (plenty for request ids, sink counts and
//! budgets; the protocol never round-trips 64-bit identifiers through
//! floats beyond 2^53). Object keys keep their input order.

use std::fmt;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep input order, duplicates keep the first value.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value from `s`; trailing non-whitespace is
    /// an error. Errors carry a byte offset and a short reason.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a number
    /// with an exact `u64` value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A JSON syntax error: byte offset plus reason.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Short human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth. The parser recurses per `[`/`{`, so
/// without a bound a line of a few thousand brackets would overflow the
/// stack; 128 is far beyond anything the protocol produces.
const MAX_DEPTH: usize = 128;

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
    depth: usize,
}

impl<'s> Parser<'s> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError { offset: self.pos, reason }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    /// Runs one container parser with the depth bound enforced.
    fn nested(
        &mut self,
        f: fn(&mut Self) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth == MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            if !pairs.iter().any(|(k, _)| *k == key) {
                pairs.push((key, val));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 leaves pos one past the last digit and the
                            // `self.pos += 1` below is for single-char escapes.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parses exactly four hex digits at `pos`, leaving `pos` after them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| {
            self.pos = start;
            self.err("invalid number")
        })?;
        if !n.is_finite() {
            self.pos = start;
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(n))
    }
}

/// Escapes `s` for use inside a JSON string literal. This is the one
/// escaper shared by every hand-assembled JSON writer in the workspace
/// (CLI `--json` output and the serve protocol), so the two cannot drift.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_and_preserves_key_order() {
        let v = Json::parse(r#"{"b": [1, {"x": null}], "a": "s", "b": 9}"#).unwrap();
        let Json::Obj(pairs) = &v else { panic!("not an object") };
        assert_eq!(pairs[0].0, "b");
        assert_eq!(pairs[1].0, "a");
        assert_eq!(pairs.len(), 2, "duplicate key keeps first value");
        assert!(matches!(v.get("b"), Some(Json::Arr(_))));
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(Json::parse(r#""é😀""#).unwrap(), Json::Str("é😀".into()));
        let escaped = json_escape("tab\there \"q\" \\");
        assert_eq!(escaped, "tab\\u0009here \\\"q\\\" \\\\");
        let reparsed = Json::parse(&format!("\"{escaped}\"")).unwrap();
        assert_eq!(reparsed, Json::Str("tab\there \"q\" \\".into()));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"unterminated", "{\"a\" 1}", "nul", "1 2", "1e999"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integer_accessor_guards_range() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn nesting_is_bounded_not_stack_fatal() {
        // At the bound: parses.
        let ok = format!("{}{}", "[".repeat(128), "]".repeat(128));
        assert!(Json::parse(&ok).is_ok());
        // One past the bound: a typed error, not a stack overflow.
        let deep = format!("{}{}", "[".repeat(129), "]".repeat(129));
        assert_eq!(Json::parse(&deep).unwrap_err().reason, "nesting too deep");
        // Far past the bound — a hostile line of brackets — still an error.
        let hostile = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        assert_eq!(Json::parse(&hostile).unwrap_err().reason, "nesting too deep");
        // Objects count against the same bound.
        let objs =
            format!("{}1{}", "{\"k\": ".repeat(200), "}".repeat(200));
        assert_eq!(Json::parse(&objs).unwrap_err().reason, "nesting too deep");
        // The depth resets between siblings: wide is fine, only deep is not.
        let wide = format!("[{}]", vec!["[1]"; 1000].join(", "));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode_and_half_pairs_fail() {
        // A surrogate pair decodes to one astral-plane character...
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        // ...and composes with neighbors on both sides.
        assert_eq!(
            Json::parse(r#""a😀z""#).unwrap(),
            Json::Str("a😀z".into())
        );
        // A high surrogate missing its partner is rejected, whatever follows.
        for bad in [r#""\ud83d""#, r#""\ud83dx""#, r#""\ud83d\n""#, r#""\ud83dA""#] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // A lone low surrogate is not a character.
        assert!(Json::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn duplicate_keys_keep_the_first_value() {
        let v = Json::parse(r#"{"id": 1, "id": 2, "op": "stats", "op": null}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("stats"));
        let Json::Obj(pairs) = v else { panic!("not an object") };
        assert_eq!(pairs.len(), 2, "duplicates must not accumulate");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        for bad in ["{} x", "{}{}", "null,", "[1] [2]", "7 //c", "true\u{0}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Trailing whitespace alone is fine.
        assert!(Json::parse("{\"a\": 1} \t\r\n").is_ok());
    }
}
