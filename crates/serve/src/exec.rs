//! Plan execution: turning a [`Plan`] into a typed [`Response`].
//!
//! `execute` is the one code path behind both the one-shot CLI and the
//! resident daemon. The differences between the two are entirely in the
//! [`ExecCtx`]: the daemon attaches a warm [`WarmCache`], an [`Event`]
//! sink for progress streaming, and a cancellation-token registration
//! hook; the CLI attaches none and gets exactly the behavior the binary
//! has always had.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use snr_core::{
    panic_message, Annealing, Budget, Constraints, GreedyDowngrade, GreedyUpgradeRepair,
    Lagrangian, LevelBased, NdrOptimizer, OptContext, Outcome, SmartNdr, Uniform,
};
use snr_cts::{synthesize, ClockTree, CtsOptions};
use snr_netlist::{load_design, load_design_with, validate::Bounds, BenchmarkSpec, Design,
    ErrorKind, LoadOptions};
use snr_par::{par_map, CancelToken, Deadline, Parallelism};
use snr_power::PowerModel;
use snr_store::{CacheKey, ContentHasher, Lookup, QuarantineReason, ResultStore, StoreKind};
use snr_tech::Technology;
use snr_variation::{MonteCarlo, VariationError, VariationModel};

use snr_pareto::{FrontPoint, ParetoFront, PointEval, SweepPoint};

use crate::cache::{CacheStatus, Warm, WarmCache};
use crate::error::ApiError;
use crate::plan::{
    DesignInput, ExportNdrPlan, ImportPlan, LintPlan, ParetoPlan, Plan, RunPlan, SuiteEntry,
    SuitePlan,
};
use crate::request::{CacheMode, Method};

/// A progress event emitted while a plan executes. The daemon streams
/// these as protocol lines tagged with the request id; the CLI ignores
/// them (its progress is the final rendering).
#[derive(Debug, Clone)]
pub enum Event {
    /// A phase began.
    PhaseStart {
        /// Phase name: `parse`, `cts`, `optimize` or `mc`.
        phase: &'static str,
    },
    /// A phase finished.
    PhaseDone {
        /// Phase name.
        phase: &'static str,
        /// Wall-clock time the phase took.
        elapsed: Duration,
    },
    /// One suite row finished evaluating (fresh rows only — rows restored
    /// from a journal or replayed from the result store are not
    /// re-announced).
    SuiteRow(
        /// The completed row.
        SuiteRow,
    ),
    /// A durable result-store entry failed integrity verification and was
    /// quarantined; the work was recomputed from scratch.
    StoreQuarantined {
        /// `run`, `suite` or `pareto`.
        scope: &'static str,
        /// Entry identity and the verification step that failed.
        detail: String,
    },
    /// One Pareto sweep point finished evaluating (fresh or replayed from
    /// the result store). The final front is in the response; these
    /// stream the candidates as they land.
    FrontPoint {
        /// The point's index in the sweep's canonical enumeration.
        index: usize,
        /// The measured evaluation.
        eval: PointEval,
        /// Whether the store served it without recomputation.
        replayed: bool,
    },
}

/// Execution context: what the front end attaches around `execute`.
pub struct ExecCtx<'c> {
    /// Warm parse+CTS cache shared across requests; `None` one-shot.
    pub cache: Option<&'c Mutex<WarmCache>>,
    /// Event sink; called from the executing thread (and, for suite rows,
    /// from worker threads — hence `Sync`).
    pub sink: Option<&'c (dyn Fn(&Event) + Sync)>,
    /// Called once with the run's cancellation token before optimization
    /// starts, so a resident front end can cancel mid-flight. When set, a
    /// token is created (and registered) even without a `--timeout`.
    pub on_token: Option<&'c (dyn Fn(&CancelToken) + Sync)>,
    /// Durable result store (L2, under the warm cache); `None` keeps
    /// execution disk-free.
    pub store: Option<&'c ResultStore>,
}

impl<'c> ExecCtx<'c> {
    /// The one-shot context: no cache, no events, no cancellation hook,
    /// no result store.
    pub fn oneshot() -> Self {
        ExecCtx { cache: None, sink: None, on_token: None, store: None }
    }

    fn emit(&self, event: &Event) {
        if let Some(sink) = self.sink {
            sink(event);
        }
    }

    /// Runs `f` bracketed by phase events.
    fn phase<T>(&self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        self.emit(&Event::PhaseStart { phase });
        let start = Instant::now();
        let out = f();
        self.emit(&Event::PhaseDone { phase, elapsed: start.elapsed() });
        out
    }
}

impl<'c> Default for ExecCtx<'c> {
    fn default() -> Self {
        ExecCtx::oneshot()
    }
}

/// The result of a `run` plan: everything a front end needs to render the
/// outcome, human or JSON, plus the artifacts (`tree`, assignment inside
/// the outcomes) that `--svg` / `--save-asg` serialize.
#[derive(Debug, Clone)]
pub struct RunResponse {
    /// The evaluated design.
    pub design: Arc<Design>,
    /// Its synthesized clock tree.
    pub tree: Arc<ClockTree>,
    /// The technology the run used.
    pub tech: Technology,
    /// The resolved constraints.
    pub constraints: Constraints,
    /// The conservative-uniform baseline.
    pub baseline: Outcome,
    /// The optimized result.
    pub result: Outcome,
    /// Monte-Carlo sample count requested (0 = none).
    pub mc_samples: usize,
    /// `(baseline σ-skew, result σ-skew)` in ps, when variation ran to
    /// completion.
    pub variation: Option<(f64, f64)>,
    /// Whether the deadline cancelled variation analysis mid-run.
    pub mc_cancelled: bool,
    /// How this run interacted with the warm cache.
    pub cache: CacheStatus,
}

/// The result of a `lint` plan.
#[derive(Debug, Clone)]
pub struct LintResponse {
    /// The validated (possibly repaired) design.
    pub design: Arc<Design>,
    /// Diagnostics, rendered.
    pub diagnostics: Vec<String>,
    /// Repair actions taken, rendered.
    pub repairs: Vec<String>,
}

impl LintResponse {
    /// `clean` or `repaired` — the status word the CLI prints.
    pub fn status(&self) -> &'static str {
        if self.repairs.is_empty() {
            "clean"
        } else {
            "repaired"
        }
    }
}

/// The result of an `import` plan: the design the external file became,
/// plus everything the importer found and fixed along the way.
#[derive(Debug, Clone)]
pub struct ImportResponse {
    /// The imported (possibly repaired) design.
    pub design: Arc<Design>,
    /// Import-layer and validation diagnostics, rendered.
    pub diagnostics: Vec<String>,
    /// Repair actions taken, rendered.
    pub repairs: Vec<String>,
}

impl ImportResponse {
    /// `clean` or `repaired` — the status word the CLI prints.
    pub fn status(&self) -> &'static str {
        if self.repairs.is_empty() {
            "clean"
        } else {
            "repaired"
        }
    }
}

/// The result of an `export_ndr` plan: the solved (or reimported)
/// assignment and its deterministic Tcl rendering.
#[derive(Debug, Clone)]
pub struct ExportNdrResponse {
    /// The design the assignment is for.
    pub design: Arc<Design>,
    /// Its synthesized clock tree.
    pub tree: Arc<ClockTree>,
    /// The technology the export used.
    pub tech: Technology,
    /// The edge→rule assignment the script encodes.
    pub assignment: snr_cts::Assignment,
    /// The rendered `create_ndr`/`assign_ndr` script.
    pub tcl: String,
    /// Whether the assignment was reimported from an existing script
    /// rather than solved.
    pub reimported: bool,
}

impl ExportNdrResponse {
    /// How many slots carry a non-default rule (the `assign_ndr` count).
    pub fn assigned(&self) -> usize {
        let default = self.tech.rules().default_id();
        (0..self.assignment.len())
            .filter(|i| self.assignment.rule(snr_cts::NodeId(*i)) != default)
            .count()
    }
}

/// One evaluated suite row: an optional stderr diagnostic, the
/// deterministic table columns (runtime excluded), the measured runtime
/// (absent for rows restored from a journal), and the FAILED verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRow {
    /// Design name (the resume key).
    pub name: String,
    /// The deterministic table line.
    pub line: String,
    /// Optional stderr diagnostic.
    pub diagnostic: Option<String>,
    /// Measured runtime; `None` for FAILED and journal-restored rows.
    pub runtime_s: Option<f64>,
    /// Whether the flow failed on this design.
    pub failed: bool,
}

impl SuiteRow {
    /// The stdout rendering: deterministic columns plus the wall-clock
    /// runtime column (`-` for FAILED rows and rows resumed from a
    /// journal, whose runtime was not re-measured).
    pub fn stdout_line(&self) -> String {
        match self.runtime_s {
            Some(rt) => format!("{} {rt:>8.1}s", self.line),
            None => format!("{} {:>9}", self.line, "-"),
        }
    }
}

/// The result of a `suite` plan.
#[derive(Debug, Clone)]
pub struct SuiteResponse {
    /// All rows, in table order.
    pub rows: Vec<SuiteRow>,
    /// How many rows FAILED.
    pub failed: usize,
}

/// A run replayed byte-for-byte from the durable result store: the
/// renderings a cold run saved, returned without parsing, synthesizing
/// or optimizing anything. Holding rendered strings (not live objects)
/// is what makes the warm output *byte-identical* to the cold run's.
#[derive(Debug, Clone)]
pub struct ReplayedRun {
    /// Exactly what `run --json` printed on the cold run.
    pub run_json: String,
    /// Exactly what plain `run` printed on the cold run.
    pub human: String,
    /// The cold run's deterministic supervision object.
    pub supervision: String,
}

/// The section names a run entry stores.
const SECTION_RUN_JSON: &str = "run_json";
const SECTION_HUMAN: &str = "human";
const SECTION_SUPERVISION: &str = "supervision";

impl ReplayedRun {
    /// Reassembles a replay from a verified entry's sections. `None` when
    /// a required section is missing or not UTF-8 — a checksum-valid
    /// entry written by an incompatible writer, which callers quarantine.
    fn from_sections(sections: snr_store::Sections) -> Option<ReplayedRun> {
        let mut run_json = None;
        let mut human = None;
        let mut supervision = None;
        for (name, bytes) in sections {
            let text = String::from_utf8(bytes).ok()?;
            match name.as_str() {
                SECTION_RUN_JSON => run_json = Some(text),
                SECTION_HUMAN => human = Some(text),
                SECTION_SUPERVISION => supervision = Some(text),
                // Unknown sections are forward-compatible extras.
                _ => {}
            }
        }
        Some(ReplayedRun { run_json: run_json?, human: human?, supervision: supervision? })
    }
}

/// One member of a rendered Pareto front: the constraint point plus its
/// measured objectives, in canonical (ascending index) order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoFrontRow {
    /// The constraint point.
    pub point: SweepPoint,
    /// The measured objective vector.
    pub objectives: snr_pareto::Objectives,
}

/// The result of a `pareto` plan: the non-dominated front over the
/// evaluated points plus the sweep's bookkeeping. Every field that the
/// JSON rendering exposes is deterministic — identical for any job
/// count, and identical whether points were computed or replayed from
/// the durable store.
#[derive(Debug, Clone)]
pub struct ParetoResponse {
    /// The swept design.
    pub design: Arc<Design>,
    /// The technology the sweep used.
    pub tech: Technology,
    /// Size of the full canonical enumeration.
    pub points_total: usize,
    /// Points scheduled after `max_points` truncation.
    pub points_planned: usize,
    /// Points that completed (fresh + replayed).
    pub evaluated: usize,
    /// Completed points served from the durable store.
    pub replayed: usize,
    /// Completed points whose optimized assignment missed constraints
    /// (reported, never front members).
    pub infeasible: usize,
    /// Whether the deadline cancelled part of the planned sweep.
    pub cancelled: bool,
    /// The non-dominated front, ascending by point index.
    pub front: Vec<ParetoFrontRow>,
    /// The sweep's budget receipt (`pareto-sweep` phase).
    pub budget: snr_core::BudgetReport,
    /// How this sweep interacted with the warm cache.
    pub cache: CacheStatus,
}

/// The typed result of executing a plan.
#[derive(Debug, Clone)]
pub enum Response {
    /// A completed run.
    Run(Box<RunResponse>),
    /// A run replayed from the durable result store.
    Replayed(Box<ReplayedRun>),
    /// A completed lint.
    Lint(Box<LintResponse>),
    /// A completed suite.
    Suite(SuiteResponse),
    /// A completed Pareto sweep.
    Pareto(Box<ParetoResponse>),
    /// A completed external-design import.
    Import(Box<ImportResponse>),
    /// A completed NDR Tcl export (or reimport).
    ExportNdr(Box<ExportNdrResponse>),
}

/// Executes a plan.
///
/// # Errors
///
/// The typed [`ApiError`] the front ends map to exit codes / error
/// objects. Panics inside the flow are *not* caught here (except where
/// the one-shot CLI always caught them: per suite row and around Monte
/// Carlo); resident front ends wrap the whole call in `catch_unwind` for
/// per-request isolation.
pub fn execute(plan: &Plan, ctx: &ExecCtx<'_>) -> Result<Response, ApiError> {
    match plan {
        Plan::Run(p) => execute_run_stored(p, ctx),
        Plan::Pareto(p) => execute_pareto(p, ctx).map(|r| Response::Pareto(Box::new(r))),
        Plan::Lint(p) => execute_lint(p).map(Response::Lint),
        Plan::Suite(p) => execute_suite(p, ctx).map(Response::Suite),
        Plan::Import(p) => execute_import(p).map(Response::Import),
        Plan::ExportNdr(p) => execute_export_ndr(p, ctx).map(Response::ExportNdr),
    }
}

/// The result store a plan may consult: attached to the context *and*
/// not opted out of by the request.
fn active_store<'c>(cache: CacheMode, ctx: &ExecCtx<'c>) -> Option<&'c ResultStore> {
    match (cache, ctx.store) {
        (CacheMode::On, Some(store)) => Some(store),
        _ => None,
    }
}

/// Whether a completed run may be written back to the store. Only fully
/// deterministic, undisturbed runs qualify: no wall-clock deadline (what
/// it completes is timing-dependent), no degradations taken, no injected
/// fault.
fn save_eligible(plan: &RunPlan, resp: &RunResponse) -> bool {
    #[cfg(feature = "fault-inject")]
    if plan.fault.is_some() {
        return false;
    }
    plan.timeout_s == 0.0 && !resp.mc_cancelled && resp.result.degradations().is_empty()
}

/// The store-aware run path: consult the durable store, replay on a
/// verified hit, otherwise compute, write back, and surface any
/// quarantine as a degradation event.
fn execute_run_stored(plan: &RunPlan, ctx: &ExecCtx<'_>) -> Result<Response, ApiError> {
    let store = active_store(plan.cache, ctx);
    let mut quarantine_detail: Option<String> = None;
    if let Some(store) = store {
        match store.load(StoreKind::Run, plan.result_key) {
            Lookup::Hit(sections) => match ReplayedRun::from_sections(sections) {
                Some(replay) => return Ok(Response::Replayed(Box::new(replay))),
                None => {
                    // Checksum-valid bytes this reader cannot use (an
                    // incompatible writer's sections): same treatment as
                    // corruption — quarantine and recompute.
                    store.quarantine(
                        StoreKind::Run,
                        plan.result_key,
                        QuarantineReason::BadFraming,
                    );
                    quarantine_detail = Some(format!(
                        "result-store entry {:016x} missing required sections",
                        plan.result_key.0
                    ));
                }
            },
            Lookup::Quarantined(reason) => {
                quarantine_detail = Some(format!(
                    "result-store entry {:016x} failed verification ({})",
                    plan.result_key.0,
                    reason.as_str()
                ));
            }
            Lookup::Miss => {}
        }
    }

    let mut resp = execute_run(plan, ctx)?;

    // Write back *before* recording the quarantine rung: the stored
    // renderings must describe the computation itself, so a later replay
    // does not re-report this store's past corruption.
    if let Some(store) = store {
        if save_eligible(plan, &resp) {
            let run_json = crate::render::run_json(&resp);
            let human = crate::render::run_human(&resp);
            let supervision =
                crate::render::supervision_json(&resp.result, resp.mc_cancelled);
            // Best-effort: a full disk loses durability, not the answer.
            let _ = store.save(
                StoreKind::Run,
                plan.result_key,
                &[
                    (SECTION_RUN_JSON, run_json.as_bytes()),
                    (SECTION_HUMAN, human.as_bytes()),
                    (SECTION_SUPERVISION, supervision.as_bytes()),
                ],
            );
        }
    }

    if let Some(detail) = quarantine_detail {
        ctx.emit(&Event::StoreQuarantined { scope: "run", detail: detail.clone() });
        resp.result
            .record_degradation(snr_core::DegradationEvent::CacheEntryQuarantined { detail });
    }
    Ok(Response::Run(resp))
}

fn lock_cache(cache: &Mutex<WarmCache>) -> std::sync::MutexGuard<'_, WarmCache> {
    cache.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Parses/generates the design and synthesizes its tree (the cold path).
fn build_warm(
    input: &DesignInput,
    tech: &Technology,
    ctx: &ExecCtx<'_>,
) -> Result<Arc<Warm>, ApiError> {
    let design = ctx.phase("parse", || match input {
        DesignInput::Bytes(bytes) => {
            if looks_like_sndr(bytes) {
                load_design(&bytes[..]).map_err(|e| ApiError::invalid(e.to_string()))
            } else {
                import_external(bytes, tech, false).map(|r| r.design)
            }
        }
        DesignInput::Spec { name, sinks, seed, freq_ghz } => {
            BenchmarkSpec::new(name.clone(), *sinks)
                .seed(*seed)
                .freq_ghz(*freq_ghz)
                .build()
                .map_err(|e| ApiError::invalid(e.to_string()))
        }
    })?;
    let tree = ctx.phase("cts", || {
        synthesize(&design, tech, &CtsOptions::default())
            .map_err(|e| ApiError::infeasible(e.to_string()))
    })?;
    Ok(Arc::new(Warm { design: Arc::new(design), tree: Arc::new(tree) }))
}

/// Serves the design+tree from the warm cache or computes them.
fn acquire_warm(
    input: &DesignInput,
    tech: &Technology,
    key: CacheKey,
    cache_mode: CacheMode,
    ctx: &ExecCtx<'_>,
) -> Result<(Arc<Warm>, CacheStatus), ApiError> {
    let cache = match (cache_mode, ctx.cache) {
        (CacheMode::On, Some(cache)) => cache,
        _ => return Ok((build_warm(input, tech, ctx)?, CacheStatus::Off)),
    };
    if let Some(warm) = lock_cache(cache).lookup(key) {
        return Ok((warm, CacheStatus::Hit));
    }
    // Build outside the lock so a slow miss does not serialize the whole
    // daemon; a concurrent duplicate build is wasted work, never a wrong
    // answer (insert keeps the first entry).
    let warm = build_warm(input, tech, ctx)?;
    lock_cache(cache).insert(key, Arc::clone(&warm));
    Ok((warm, CacheStatus::Miss))
}

/// Builds the optimizer a `method` spelling names, with the run's budget
/// and parallelism attached where the optimizer supports them. Shared by
/// `run` and `export_ndr` so the two cannot disagree on what a method
/// means.
fn make_optimizer(method: Method, budget: Budget, par: Parallelism) -> Box<dyn NdrOptimizer> {
    match method {
        Method::Smart => Box::new(SmartNdr::default().with_budget(budget).with_parallelism(par)),
        Method::Greedy => {
            Box::new(GreedyDowngrade::default().with_budget(budget).with_parallelism(par))
        }
        Method::Upgrade => {
            Box::new(GreedyUpgradeRepair::default().with_budget(budget).with_parallelism(par))
        }
        Method::Level => Box::new(LevelBased),
        Method::Uniform => Box::new(Uniform::conservative()),
        Method::Anneal => Box::new(Annealing::new(20_000, 1).with_budget(budget)),
        Method::Lagrangian => Box::new(Lagrangian::new().with_budget(budget)),
    }
}

fn execute_run(plan: &RunPlan, ctx: &ExecCtx<'_>) -> Result<Box<RunResponse>, ApiError> {
    #[cfg(feature = "fault-inject")]
    if plan.fault == Some(crate::request::ServeFault::Panic) {
        panic!("injected fault: poisoned request");
    }

    let (warm, cache_status) = acquire_warm(&plan.input, &plan.tech, plan.key, plan.cache, ctx)?;
    let design = Arc::clone(&warm.design);
    let tree = Arc::clone(&warm.tree);

    let opt_ctx = OptContext::new(&tree, &plan.tech, PowerModel::new(design.freq_ghz()))
        .with_constraints(Constraints::relative(
            &tree,
            &plan.tech,
            plan.slew_margin,
            plan.skew_budget_ps,
        ));
    #[cfg(feature = "fault-inject")]
    let opt_ctx = match plan.fault {
        Some(crate::request::ServeFault::ProbePanic(at_probe)) => {
            opt_ctx.with_exec_fault(snr_core::ExecFault::ProbePanic { at_probe })
        }
        _ => opt_ctx,
    };

    // Budget and cancellation, exactly as the CLI has always armed them —
    // plus a resident-mode twist: when the front end wants a cancellation
    // hook, a token exists even without a timeout.
    let mut budget = Budget::unlimited();
    if plan.max_iters > 0 {
        budget = budget.with_max_iters(plan.max_iters);
    }
    let token = if plan.timeout_s > 0.0 {
        Some(CancelToken::with_deadline(Deadline::after(Duration::from_secs_f64(
            plan.timeout_s,
        ))))
    } else if ctx.on_token.is_some() {
        Some(CancelToken::new())
    } else {
        None
    };
    if let Some(t) = &token {
        budget = budget.with_token(t.clone());
        if let Some(hook) = ctx.on_token {
            hook(t);
        }
    }

    let par = plan.jobs.unwrap_or_else(Parallelism::serial);
    let method = make_optimizer(plan.method, budget, par);

    let baseline = opt_ctx.conservative_baseline();
    let result = ctx.phase("optimize", || method.optimize(&opt_ctx));

    let mut variation = None;
    let mut mc_cancelled = false;
    if plan.mc_samples > 0 {
        let mut mc = MonteCarlo::new(VariationModel::default(), plan.mc_samples, 7);
        if let Some(par) = plan.jobs {
            mc = mc.with_parallelism(par);
        }
        // A panicking sample worker surfaces here after every worker has
        // joined; map it to the typed infeasible error so front ends
        // report it instead of aborting. Results are bit-identical per
        // job count, so jobs=1 reproduces the failure serially.
        let mc_token = token.clone().unwrap_or_default();
        let reps = ctx.phase("mc", || {
            catch_unwind(AssertUnwindSafe(|| -> Result<_, VariationError> {
                Ok((
                    mc.run_with_token(&tree, &plan.tech, baseline.assignment(), &mc_token)?,
                    mc.run_with_token(&tree, &plan.tech, result.assignment(), &mc_token)?,
                ))
            }))
        })
        .map_err(|payload| {
            ApiError::infeasible(format!(
                "Monte Carlo analysis panicked on {}: {} (re-run with --jobs 1 to localize)",
                design.name(),
                panic_message(&*payload, 120),
            ))
        })?;
        match reps {
            Ok((rep_base, rep_out)) => {
                variation = Some((rep_base.sigma_skew_ps(), rep_out.sigma_skew_ps()));
            }
            // The deadline fired mid-analysis. Partial statistics would
            // silently change the reported distribution, so the variation
            // section is dropped rather than degraded.
            Err(VariationError::Cancelled) => mc_cancelled = true,
            // Optimizer assignments always draw from the plan's rule set,
            // but the typed error must still be surfaced, not swallowed.
            Err(e @ VariationError::RuleOutOfRange { .. }) => {
                return Err(ApiError::infeasible(format!(
                    "Monte Carlo analysis rejected {}: {e}",
                    design.name()
                )));
            }
        }
    }

    let constraints = opt_ctx.constraints();
    Ok(Box::new(RunResponse {
        design,
        tree,
        tech: plan.tech.clone(),
        constraints,
        baseline,
        result,
        mc_samples: plan.mc_samples,
        variation,
        mc_cancelled,
        cache: cache_status,
    }))
}

/// The section name a pareto-point entry stores.
const SECTION_EVAL: &str = "eval";

/// Reassembles a point evaluation from a verified store entry. `None`
/// when the `eval` section is missing, not UTF-8, or written by an
/// incompatible encoder — callers quarantine, exactly like runs.
fn pareto_eval_from_sections(sections: snr_store::Sections) -> Option<PointEval> {
    for (name, bytes) in sections {
        if name == SECTION_EVAL {
            let text = String::from_utf8(bytes).ok()?;
            return snr_pareto::decode_eval(&text);
        }
    }
    None
}

/// Executes a Pareto sweep: evaluates every planned constraint point
/// (replaying completed points from the durable store where possible)
/// and folds the feasible evaluations through the dominance filter.
///
/// Determinism contract: each point's evaluation is fully serial and
/// seeded, so parallelism exists only *across* points — `par_map`
/// returns results in enumeration order, making the front (and its
/// rendering) bit-identical for any `--jobs` value, and identical
/// whether a point was computed fresh or replayed from the store.
fn execute_pareto(plan: &ParetoPlan, ctx: &ExecCtx<'_>) -> Result<ParetoResponse, ApiError> {
    let store = active_store(plan.cache, ctx);
    let (warm, cache_status) =
        acquire_warm(&plan.input, &plan.tech, plan.key, plan.cache, ctx)?;
    let design = Arc::clone(&warm.design);
    let tree = Arc::clone(&warm.tree);

    // The conservative-uniform baseline anchors the relative track-budget
    // axis; computed once, shared by every point.
    let baseline_track_um =
        OptContext::new(&tree, &plan.tech, PowerModel::new(design.freq_ghz()))
            .conservative_baseline()
            .power()
            .track_cost_um();

    let token = if plan.timeout_s > 0.0 {
        Some(CancelToken::with_deadline(Deadline::after(Duration::from_secs_f64(
            plan.timeout_s,
        ))))
    } else if ctx.on_token.is_some() {
        Some(CancelToken::new())
    } else {
        None
    };
    if let (Some(t), Some(hook)) = (&token, ctx.on_token) {
        hook(t);
    }

    // `max_points` truncation is a deterministic prefix of the canonical
    // enumeration, decided before any point is dispatched.
    let planned = if plan.max_points > 0 {
        plan.points.len().min(plan.max_points as usize)
    } else {
        plan.points.len()
    };
    let active = &plan.points[..planned];
    let par = plan.jobs.unwrap_or_else(Parallelism::serial);
    let start = Instant::now();

    // `None` slots are cancelled points: a fired deadline drops the whole
    // point (never a partial result), so everything that *does* land is
    // identical to what an untimed sweep would have produced.
    let evals: Vec<Option<(PointEval, bool)>> = ctx.phase("sweep", || {
        par_map(par, active, |_, point| {
            let key = store.map(|_| plan.point_key(point));
            if let (Some(store), Some(key)) = (store, key) {
                match store.load(StoreKind::ParetoPoint, key) {
                    Lookup::Hit(sections) => match pareto_eval_from_sections(sections) {
                        Some(eval) => {
                            ctx.emit(&Event::FrontPoint {
                                index: point.index,
                                eval,
                                replayed: true,
                            });
                            return Some((eval, true));
                        }
                        None => {
                            store.quarantine(
                                StoreKind::ParetoPoint,
                                key,
                                QuarantineReason::BadFraming,
                            );
                            ctx.emit(&Event::StoreQuarantined {
                                scope: "pareto",
                                detail: format!(
                                    "pareto-point entry {:016x} missing required sections",
                                    key.0
                                ),
                            });
                        }
                    },
                    Lookup::Quarantined(reason) => {
                        ctx.emit(&Event::StoreQuarantined {
                            scope: "pareto",
                            detail: format!(
                                "pareto-point entry {:016x} failed verification ({})",
                                key.0,
                                reason.as_str()
                            ),
                        });
                    }
                    Lookup::Miss => {}
                }
            }
            let eval = snr_pareto::evaluate_point(
                &design,
                &tree,
                &plan.tech,
                point,
                &plan.eval,
                baseline_track_um,
                token.as_ref(),
            )?;
            ctx.emit(&Event::FrontPoint { index: point.index, eval, replayed: false });
            // Every completed point is replay-safe — evaluation is fully
            // serial and seeded, so even a degraded point (and a point
            // that completed under a cooperative deadline) is identical
            // to what any later sweep would recompute. Best-effort: a
            // full disk loses durability, not the answer.
            if let (Some(store), Some(key)) = (store, key) {
                let _ = store.save(
                    StoreKind::ParetoPoint,
                    key,
                    &[(SECTION_EVAL, snr_pareto::encode_eval(&eval).as_bytes())],
                );
            }
            Some((eval, false))
        })
    });

    let mut front = ParetoFront::new();
    let mut evaluated = 0usize;
    let mut replayed = 0usize;
    let mut infeasible = 0usize;
    let mut cancelled = false;
    for (point, slot) in active.iter().zip(&evals) {
        match slot {
            None => cancelled = true,
            Some((eval, was_replayed)) => {
                evaluated += 1;
                if *was_replayed {
                    replayed += 1;
                }
                if eval.meets {
                    front.insert(FrontPoint { index: point.index, objectives: eval.objectives });
                } else {
                    infeasible += 1;
                }
            }
        }
    }

    let front = front
        .into_sorted()
        .into_iter()
        .map(|fp| ParetoFrontRow {
            point: plan.points[fp.index],
            objectives: fp.objectives,
        })
        .collect();

    let budget = snr_core::BudgetReport {
        phase: "pareto-sweep",
        iterations_done: evaluated as u64,
        elapsed: start.elapsed(),
        exhausted: cancelled || planned < plan.points.len(),
    };

    Ok(ParetoResponse {
        design,
        tech: plan.tech.clone(),
        points_total: plan.points.len(),
        points_planned: planned,
        evaluated,
        replayed,
        infeasible,
        cancelled,
        front,
        budget,
        cache: cache_status,
    })
}

fn execute_lint(plan: &LintPlan) -> Result<Box<LintResponse>, ApiError> {
    let opts = LoadOptions { bounds: Bounds::for_tech(&plan.tech), repair: plan.repair };
    let report = load_design_with(&plan.bytes[..], &opts).map_err(|e| {
        // Surface the individual diagnostics with the failure, so front
        // ends can show every problem at once instead of the first.
        let details: Vec<String> = e.diagnostics().iter().map(|d| d.to_string()).collect();
        let hint = match e.kind() {
            ErrorKind::Parse => " (syntax error; run with a valid .sndr file)",
            _ if !details.is_empty() => " (re-run with --repair to attempt salvage)",
            _ => "",
        };
        ApiError::invalid(format!("{e}{hint}")).with_details(details)
    })?;

    let diagnostics: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    let repairs: Vec<String> = report.repairs.iter().map(|r| r.to_string()).collect();

    // Feasibility smoke-check: a structurally valid design that no buffer
    // in the library can drive is a constraint problem, not an input
    // problem. The diagnostics still travel with the error so nothing
    // already discovered is lost.
    synthesize(&report.design, &plan.tech, &CtsOptions::default()).map_err(|e| {
        let mut details = diagnostics.clone();
        details.extend(repairs.iter().cloned());
        ApiError::infeasible(format!("{}: {e}", report.design.name())).with_details(details)
    })?;

    Ok(Box::new(LintResponse { design: Arc::new(report.design), diagnostics, repairs }))
}

/// `.sndr` files always open with their `sndr <version>` magic; any other
/// design bytes are treated as external DEF-lite, so `run`/`suite`/
/// `pareto`/`export-ndr` accept imported formats directly (strict import —
/// salvage belongs to the explicit `import --repair`).
fn looks_like_sndr(bytes: &[u8]) -> bool {
    let start = bytes.iter().position(|b| !b.is_ascii_whitespace()).unwrap_or(0);
    bytes[start..].starts_with(b"sndr")
}

/// Runs the bounded DEF-lite importer over external bytes, mapping a
/// rejection to a typed error carrying every diagnostic (always at least
/// one `I`-series code) as error details.
fn import_external(
    bytes: &[u8],
    tech: &Technology,
    repair: bool,
) -> Result<snr_netlist::ImportReport, ApiError> {
    let opts = snr_netlist::ImportOptions {
        bounds: Bounds::for_tech(tech),
        repair,
        limits: snr_netlist::ImportLimits::default(),
    };
    snr_netlist::import_design_with(bytes, &opts).map_err(|e| {
        let details: Vec<String> = e.diagnostics().iter().map(|d| d.to_string()).collect();
        let hint = match e.kind() {
            ErrorKind::Parse => " (not a readable DEF-lite/ISPD file)",
            _ if !details.is_empty() => " (re-run with --repair to attempt salvage)",
            _ => "",
        };
        ApiError::invalid(format!("{e}{hint}")).with_details(details)
    })
}

/// Imports an external DEF-lite design through the bounded importer.
/// Mirrors [`execute_lint`]: a rejection surfaces every diagnostic as
/// error details (all of them carrying `I`-series codes), and a design
/// that imports but cannot be synthesized is *infeasible*, not invalid.
fn execute_import(plan: &ImportPlan) -> Result<Box<ImportResponse>, ApiError> {
    let report = import_external(&plan.bytes, &plan.tech, plan.repair)?;

    let diagnostics: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    let repairs: Vec<String> = report.repairs.iter().map(|r| r.to_string()).collect();

    // Same feasibility smoke-check as lint: an importable design the CTS
    // flow cannot synthesize is a constraint problem, not an input one.
    synthesize(&report.design, &plan.tech, &CtsOptions::default()).map_err(|e| {
        let mut details = diagnostics.clone();
        details.extend(repairs.iter().cloned());
        ApiError::infeasible(format!("{}: {e}", report.design.name())).with_details(details)
    })?;

    Ok(Box::new(ImportResponse { design: Arc::new(report.design), diagnostics, repairs }))
}

/// Solves (or reimports) an assignment and renders it as NDR Tcl. The
/// solve path is deliberately serial and unbudgeted so the script is a
/// pure function of (design bytes, tech, method, constraints) — exported
/// artifacts must be byte-for-byte reproducible.
fn execute_export_ndr(
    plan: &ExportNdrPlan,
    ctx: &ExecCtx<'_>,
) -> Result<Box<ExportNdrResponse>, ApiError> {
    let (warm, _) = acquire_warm(&plan.input, &plan.tech, plan.key, CacheMode::On, ctx)?;
    let design = Arc::clone(&warm.design);
    let tree = Arc::clone(&warm.tree);

    let assignment = match &plan.from_tcl {
        Some(text) => snr_cts::import_ndr_tcl(text, &tree, &plan.tech)
            .map_err(|e| ApiError::invalid(format!("NDR script rejected: {e}")))?,
        None => {
            let opt_ctx =
                OptContext::new(&tree, &plan.tech, PowerModel::new(design.freq_ghz()))
                    .with_constraints(Constraints::relative(
                        &tree,
                        &plan.tech,
                        plan.slew_margin,
                        plan.skew_budget_ps,
                    ));
            let method =
                make_optimizer(plan.method, Budget::unlimited(), Parallelism::serial());
            let out = ctx.phase("optimize", || method.optimize(&opt_ctx));
            if !out.meets_constraints() {
                return Err(ApiError::infeasible(format!(
                    "{}: no feasible assignment under slew margin {} / skew budget {} ps",
                    design.name(),
                    plan.slew_margin,
                    plan.skew_budget_ps
                )));
            }
            out.assignment().clone()
        }
    };
    let tcl = snr_cts::export_ndr_tcl(design.name(), &tree, &assignment, &plan.tech);
    Ok(Box::new(ExportNdrResponse {
        design,
        tree,
        tech: plan.tech.clone(),
        assignment,
        tcl,
        reimported: plan.from_tcl.is_some(),
    }))
}

/// Collapses `s` to one whitespace-normalized reason token stream of at
/// most `max` chars (`-` when empty), so it fits a single table column.
fn reason_cell(s: &str, max: usize) -> String {
    let mut out = s.split_whitespace().collect::<Vec<_>>().join(" ");
    if out.is_empty() {
        out.push('-');
    }
    if out.chars().count() > max {
        out = out.chars().take(max.saturating_sub(1)).collect();
        out.push('…');
    }
    out
}

/// The deterministic columns of a row whose flow did not finish, with the
/// failure reason in the reason column.
fn failed_line(name: &str, sinks: &str, reason: &str) -> String {
    format!("{name:<8} {sinks:>8} {:>12} {:>12} {:>8} {:<8}", "FAILED", "-", "-", reason)
}

/// Evaluates one suite entry. Runs on a worker thread under `jobs`; the
/// whole flow sits inside `catch_unwind` so a poisoned design (bad file,
/// synthesis failure, even a panic in the flow) becomes a `FAILED` row —
/// carrying the truncated panic message in its reason column — instead of
/// taking down the run. Degradation-ladder rungs taken by a successful
/// run surface in the same column as `degraded:<rung,...>`.
fn suite_row(entry: &SuiteEntry, tech: &Technology) -> SuiteRow {
    let design = match entry {
        SuiteEntry::Design(d) => d,
        SuiteEntry::Unloadable { name, reason } => {
            return SuiteRow {
                diagnostic: Some(format!("{name}: {reason}")),
                name: name.clone(),
                line: failed_line(name, "-", &reason_cell(reason, 60)),
                runtime_s: None,
                failed: true,
            }
        }
    };
    let row = catch_unwind(AssertUnwindSafe(|| -> Result<(String, f64), String> {
        let tree = synthesize(design, tech, &CtsOptions::default()).map_err(|e| e.to_string())?;
        let ctx = OptContext::new(&tree, tech, PowerModel::new(design.freq_ghz()));
        let base = ctx.conservative_baseline();
        let out = SmartNdr::default().optimize(&ctx);
        let mut rungs: Vec<&str> = Vec::new();
        for d in out.degradations() {
            if !rungs.contains(&d.rung()) {
                rungs.push(d.rung());
            }
        }
        let reason = if rungs.is_empty() {
            "-".to_owned()
        } else {
            format!("degraded:{}", rungs.join(","))
        };
        Ok((
            format!(
                "{:<8} {:>8} {:>12.1} {:>12.1} {:>7.1}% {:<8}",
                design.name(),
                design.sinks().len(),
                base.power().network_uw(),
                out.power().network_uw(),
                100.0 * out.network_saving_vs(&base),
                reason,
            ),
            out.elapsed().as_secs_f64(),
        ))
    }));
    let name = design.name().to_owned();
    let sinks = design.sinks().len().to_string();
    match row {
        Ok(Ok((line, rt))) => {
            SuiteRow { diagnostic: None, name, line, runtime_s: Some(rt), failed: false }
        }
        Ok(Err(reason)) => SuiteRow {
            diagnostic: Some(format!("{name}: {reason}")),
            line: failed_line(&name, &sinks, &reason_cell(&reason, 60)),
            name,
            runtime_s: None,
            failed: true,
        },
        Err(panic) => {
            let reason = panic_message(&*panic, 60);
            SuiteRow {
                diagnostic: Some(format!("{name}: panicked: {reason}")),
                line: failed_line(&name, &sinks, &reason),
                name,
                runtime_s: None,
                failed: true,
            }
        }
    }
}

/// The result-store key of one suite row: a content hash of the design's
/// canonical serialized bytes (not its name or path), the technology and
/// the CTS configuration. `None` when the design cannot be serialized —
/// such a row just runs uncached.
fn suite_row_key(design: &Design, tech: &Technology) -> Option<CacheKey> {
    let mut bytes = Vec::new();
    snr_netlist::save_design(design, &mut bytes).ok()?;
    Some(
        ContentHasher::new()
            .chunk(b"suite-row-v1")
            .chunk(&bytes)
            .chunk(tech.name().as_bytes())
            .chunk(crate::plan::CTS_OPTIONS_FINGERPRINT.as_bytes())
            .finish(),
    )
}

/// Reassembles a suite row from a verified store entry. Stored rows are
/// always successful ones (see the save gate), so the diagnostic is empty
/// and — like journal-restored rows — the runtime was not re-measured.
fn suite_row_from_sections(sections: snr_store::Sections) -> Option<SuiteRow> {
    let mut name = None;
    let mut line = None;
    for (section, bytes) in sections {
        let text = String::from_utf8(bytes).ok()?;
        match section.as_str() {
            "name" => name = Some(text),
            "line" => line = Some(text),
            _ => {}
        }
    }
    Some(SuiteRow {
        name: name?,
        line: line?,
        diagnostic: None,
        runtime_s: None,
        failed: false,
    })
}

fn execute_suite(plan: &SuitePlan, ctx: &ExecCtx<'_>) -> Result<SuiteResponse, ApiError> {
    let store = active_store(plan.cache, ctx);
    let rows = par_map(plan.par, &plan.entries, |_, entry| {
        if let Some(row) = plan.prefilled.get(entry.name()) {
            return row.clone();
        }
        let key = match (store, entry) {
            (Some(_), SuiteEntry::Design(d)) => suite_row_key(d, &plan.tech),
            _ => None,
        };
        if let (Some(store), Some(key)) = (store, key) {
            match store.load(StoreKind::SuiteRow, key) {
                Lookup::Hit(sections) => match suite_row_from_sections(sections) {
                    // Replayed rows are not re-announced (no SuiteRow
                    // event), exactly like journal-restored rows.
                    Some(row) => return row,
                    None => store.quarantine(StoreKind::SuiteRow, key, QuarantineReason::BadFraming),
                },
                Lookup::Quarantined(reason) => {
                    ctx.emit(&Event::StoreQuarantined {
                        scope: "suite",
                        detail: format!(
                            "suite-row entry {:016x} failed verification ({})",
                            key.0,
                            reason.as_str()
                        ),
                    });
                }
                Lookup::Miss => {}
            }
        }
        let row = suite_row(entry, &plan.tech);
        ctx.emit(&Event::SuiteRow(row.clone()));
        // Only clean, undegraded rows are worth replaying; failures and
        // degraded runs re-evaluate every time.
        if let (Some(store), Some(key)) = (store, key) {
            if !row.failed && row.diagnostic.is_none() && !row.line.contains("degraded:") {
                let _ = store.save(
                    StoreKind::SuiteRow,
                    key,
                    &[("name", row.name.as_bytes()), ("line", row.line.as_bytes())],
                );
            }
        }
        row
    });
    let failed = rows.iter().filter(|r| r.failed).count();
    Ok(SuiteResponse { rows, failed })
}
