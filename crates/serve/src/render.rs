//! The single shared JSON serializer for flow results.
//!
//! These functions are the *only* place run/lint outcomes are turned into
//! JSON: `smart-ndr run --json` prints [`run_json`] verbatim, and the
//! daemon embeds the very same string inside its response envelope — so
//! the two output paths cannot drift. (A test in `tests/api.rs` pins the
//! envelope to embed `run_json` byte-identically.)
//!
//! Formatting is inherited unchanged from the original CLI writers:
//! `": "` / `", "` separators, fixed decimal precisions, and elapsed
//! times only where the CLI always reported them (`runtime_s`).

use snr_core::Outcome;
use snr_cts::ClockTree;
use snr_tech::Technology;

use snr_pareto::{SkewAxis, SweepPoint};

use crate::error::ApiError;
use crate::exec::{
    Event, ExportNdrResponse, ImportResponse, LintResponse, ParetoResponse, Response,
    RunResponse, SuiteResponse, SuiteRow,
};
use crate::json::json_escape;

/// Serializes an [`Outcome`] as a JSON object, including the per-rule
/// wirelength histogram.
pub fn outcome_json(out: &Outcome, tree: &ClockTree, tech: &Technology) -> String {
    let usage = out.assignment().usage_um(tree, tech.rules());
    let histogram = tech
        .rules()
        .iter()
        .map(|(id, rule)| format!("\"{}\": {:.3}", json_escape(&rule.to_string()), usage[id.0]))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "{{\"name\": \"{}\", \"network_uw\": {:.6}, \"total_uw\": {:.6}, ",
            "\"track_cost_um\": {:.3}, \"skew_ps\": {:.6}, \"max_slew_ps\": {:.6}, ",
            "\"latency_ps\": {:.6}, \"meets_constraints\": {}, \"runtime_s\": {:.6}, ",
            "\"rule_histogram_um\": {{{}}}}}"
        ),
        json_escape(out.name()),
        out.power().network_uw(),
        out.power().total_uw(),
        out.power().track_cost_um(),
        out.timing().skew_ps(),
        out.timing().max_slew_ps(),
        out.timing().latency_ps(),
        out.meets_constraints(),
        out.elapsed().as_secs_f64(),
        histogram,
    )
}

/// Serializes an outcome's supervision record (budget receipts plus the
/// degradation ladder) as a JSON object. Elapsed times are deliberately
/// omitted: every field here is deterministic for a given seed and job
/// count, so callers can diff the whole object across runs.
pub fn supervision_json(out: &Outcome, mc_cancelled: bool) -> String {
    let budgets = out
        .budget_reports()
        .iter()
        .map(|b| {
            format!(
                "{{\"phase\": \"{}\", \"iterations\": {}, \"exhausted\": {}}}",
                json_escape(b.phase),
                b.iterations_done,
                b.exhausted
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let rungs = out
        .degradations()
        .iter()
        .map(|d| {
            format!(
                "{{\"rung\": \"{}\", \"detail\": \"{}\"}}",
                json_escape(d.rung()),
                json_escape(&d.detail())
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "{{\"budget_exhausted\": {}, \"mc_cancelled\": {}, ",
            "\"budgets\": [{}], \"degradations\": [{}]}}"
        ),
        out.budget_exhausted(),
        mc_cancelled,
        budgets,
        rungs,
    )
}

/// The full machine-readable object for a completed run — exactly the
/// line `smart-ndr run --json` prints.
pub fn run_json(resp: &RunResponse) -> String {
    let variation = match resp.variation {
        Some((b, r)) => format!(
            ", \"variation\": {{\"samples\": {}, \"sigma_skew_baseline_ps\": {b:.6}, \"sigma_skew_result_ps\": {r:.6}}}",
            resp.mc_samples
        ),
        None => String::new(),
    };
    format!(
        concat!(
            "{{\"design\": {{\"name\": \"{}\", \"sinks\": {}, \"freq_ghz\": {}}}, ",
            "\"tech\": \"{}\", ",
            "\"constraints\": {{\"slew_limit_ps\": {:.6}, \"skew_limit_ps\": {:.6}}}, ",
            "\"baseline\": {}, \"result\": {}, ",
            "\"saving\": {{\"network_frac\": {:.6}, \"track_frac\": {:.6}}}, ",
            "\"supervision\": {}{}}}"
        ),
        json_escape(resp.design.name()),
        resp.design.sinks().len(),
        resp.design.freq_ghz(),
        json_escape(resp.tech.name()),
        resp.constraints.slew_limit_ps(),
        resp.constraints.skew_limit_ps(),
        outcome_json(&resp.baseline, &resp.tree, &resp.tech),
        outcome_json(&resp.result, &resp.tree, &resp.tech),
        resp.result.network_saving_vs(&resp.baseline),
        1.0 - resp.result.power().track_cost_um() / resp.baseline.power().track_cost_um(),
        supervision_json(&resp.result, resp.mc_cancelled),
        variation,
    )
}

/// The human rendering of a completed run — exactly the block plain
/// `smart-ndr run` prints (trailing newline included). Centralized here
/// so the result store can save it on a cold run and the warm replay can
/// reproduce it byte-for-byte.
pub fn run_human(resp: &RunResponse) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "design: {}", resp.design);
    let _ = writeln!(out, "tree:   {}", resp.tree.stats());
    let _ = writeln!(out, "constraints: {}", resp.constraints);
    let _ = writeln!(out, "\nbaseline: {}", resp.baseline);
    let _ = writeln!(out, "result:   {}", resp.result);
    let _ = writeln!(
        out,
        "saving:   {:.1}% of clock-network power, {:.1}% of track cost",
        100.0 * resp.result.network_saving_vs(&resp.baseline),
        100.0
            * (1.0
                - resp.result.power().track_cost_um()
                    / resp.baseline.power().track_cost_um()),
    );
    for b in resp.result.budget_reports().iter().filter(|b| b.exhausted) {
        let _ = writeln!(
            out,
            "budget:   {} exhausted after {} iterations — result is best-so-far",
            b.phase, b.iterations_done
        );
    }
    for d in resp.result.degradations() {
        let _ = writeln!(out, "degraded: {d}");
    }
    if let Some((b, r)) = resp.variation {
        let _ = writeln!(
            out,
            "variation ({} samples): σ-skew baseline {b:.2} ps, result {r:.2} ps",
            resp.mc_samples
        );
    } else if resp.mc_cancelled {
        let _ = writeln!(
            out,
            "variation: cancelled by --timeout before {} samples completed",
            resp.mc_samples
        );
    }
    out
}

/// The machine-readable object for a completed lint — exactly the line
/// `smart-ndr lint --json` prints.
pub fn lint_json(resp: &LintResponse) -> String {
    let list = |items: &[String]| {
        items
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "{{\"design\": \"{}\", \"status\": \"{}\", \"diagnostics\": [{}], \"repairs\": [{}]}}",
        json_escape(resp.design.name()),
        resp.status(),
        list(&resp.diagnostics),
        list(&resp.repairs),
    )
}

/// The machine-readable object for a completed import — exactly the line
/// `smart-ndr import --json` prints.
pub fn import_json(resp: &ImportResponse) -> String {
    let list = |items: &[String]| {
        items
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        concat!(
            "{{\"design\": \"{}\", \"status\": \"{}\", \"sinks\": {}, ",
            "\"diagnostics\": [{}], \"repairs\": [{}]}}"
        ),
        json_escape(resp.design.name()),
        resp.status(),
        resp.design.sinks().len(),
        list(&resp.diagnostics),
        list(&resp.repairs),
    )
}

/// The machine-readable object for a completed NDR export — exactly the
/// line `smart-ndr export-ndr --json` prints. The script itself rides
/// along escaped, so daemon clients need no second channel to fetch it.
pub fn export_ndr_json(resp: &ExportNdrResponse) -> String {
    format!(
        concat!(
            "{{\"design\": \"{}\", \"tech\": \"{}\", \"nodes\": {}, ",
            "\"assigned\": {}, \"reimported\": {}, \"ndr_tcl\": \"{}\"}}"
        ),
        json_escape(resp.design.name()),
        json_escape(resp.tech.name()),
        resp.tree.len(),
        resp.assigned(),
        resp.reimported,
        json_escape(&resp.tcl),
    )
}

/// The machine-readable object for a completed suite.
pub fn suite_json(resp: &SuiteResponse) -> String {
    let rows = resp
        .rows
        .iter()
        .map(|row| {
            let diag = match &row.diagnostic {
                Some(d) => format!(", \"diagnostic\": \"{}\"", json_escape(d)),
                None => String::new(),
            };
            format!(
                "{{\"name\": \"{}\", \"line\": \"{}\", \"failed\": {}{}}}",
                json_escape(&row.name),
                json_escape(&row.line),
                row.failed,
                diag,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{\"rows\": [{}], \"failed\": {}}}", rows, resp.failed)
}

/// The constraint-point fields of one sweep point, shared by the JSON
/// front rows: the slew margin, exactly one of `skew_budget_ps` /
/// `window_ps`, and `track_frac` only when the axis is active.
fn sweep_point_fields(point: &SweepPoint) -> String {
    let skew = match point.skew {
        SkewAxis::Global { budget_ps } => format!("\"skew_budget_ps\": {budget_ps}"),
        SkewAxis::Window { window_ps } => format!("\"window_ps\": {window_ps}"),
    };
    let track = match point.track_frac {
        Some(frac) => format!(", \"track_frac\": {frac}"),
        None => String::new(),
    };
    format!("\"slew_margin\": {}, {skew}{track}", point.slew_margin)
}

/// The human rendering of a sweep point's skew constraint.
fn skew_cell(point: &SweepPoint) -> String {
    match point.skew {
        SkewAxis::Global { budget_ps } => format!("budget {budget_ps}ps"),
        SkewAxis::Window { window_ps } => format!("window ±{window_ps}ps"),
    }
}

/// The machine-readable object for a completed Pareto sweep — exactly
/// the line `smart-ndr pareto --json` prints. Every field is
/// deterministic modulo a fired deadline: replay counters and elapsed
/// times are deliberately excluded, so a cold sweep, a store-warm
/// re-run, and any `--jobs` value all emit byte-identical objects.
pub fn pareto_json(resp: &ParetoResponse) -> String {
    let front = resp
        .front
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "{{\"index\": {}, {}, \"power_uw\": {:.6}, \"skew_ps\": {:.6}, ",
                    "\"sigma_skew_ps\": {:.6}, \"track_cost_um\": {:.3}}}"
                ),
                row.point.index,
                sweep_point_fields(&row.point),
                row.objectives.power_uw,
                row.objectives.skew_ps,
                row.objectives.sigma_skew_ps,
                row.objectives.track_cost_um,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "{{\"design\": {{\"name\": \"{}\", \"sinks\": {}, \"freq_ghz\": {}}}, ",
            "\"tech\": \"{}\", ",
            "\"sweep\": {{\"points\": {}, \"planned\": {}, \"evaluated\": {}, ",
            "\"infeasible\": {}, \"cancelled\": {}, \"exhausted\": {}}}, ",
            "\"front\": [{}]}}"
        ),
        json_escape(resp.design.name()),
        resp.design.sinks().len(),
        resp.design.freq_ghz(),
        json_escape(resp.tech.name()),
        resp.points_total,
        resp.points_planned,
        resp.evaluated,
        resp.infeasible,
        resp.cancelled,
        resp.budget.exhausted,
        front,
    )
}

/// The human rendering of a completed Pareto sweep — exactly the block
/// plain `smart-ndr pareto` prints (trailing newline included).
pub fn pareto_human(resp: &ParetoResponse) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "design: {}", resp.design);
    let _ = writeln!(out, "tech:   {}", resp.tech.name());
    let _ = writeln!(
        out,
        "sweep:  {} of {} points planned, {} evaluated, {} infeasible",
        resp.points_planned, resp.points_total, resp.evaluated, resp.infeasible
    );
    let _ = writeln!(out, "front:  {} non-dominated point(s)", resp.front.len());
    if !resp.front.is_empty() {
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:<16} {:>6} {:>12} {:>10} {:>10} {:>12}",
            "idx", "slew", "skew", "track", "power µW", "skew ps", "σ ps", "track µm"
        );
        for row in &resp.front {
            let track = match row.point.track_frac {
                Some(frac) => format!("{frac}"),
                None => "-".to_owned(),
            };
            let _ = writeln!(
                out,
                "{:>5} {:>6} {:<16} {:>6} {:>12.1} {:>10.2} {:>10.2} {:>12.1}",
                row.point.index,
                row.point.slew_margin,
                skew_cell(&row.point),
                track,
                row.objectives.power_uw,
                row.objectives.skew_ps,
                row.objectives.sigma_skew_ps,
                row.objectives.track_cost_um,
            );
        }
    }
    if resp.budget.exhausted {
        let _ = writeln!(
            out,
            "budget: {} exhausted after {} points — front is best-so-far",
            resp.budget.phase, resp.budget.iterations_done
        );
    }
    out
}

/// The structured error object for a failed command — exactly the line
/// the CLI prints on `--json` failures.
pub fn error_json(err: &ApiError) -> String {
    format!(
        "{{\"error\": {{\"code\": \"{}\", \"message\": \"{}\"}}}}",
        err.code().as_str(),
        json_escape(err.message())
    )
}

/// The suite table's stdout header (with the runtime column).
pub fn suite_header() -> String {
    format!(
        "{:<8} {:>8} {:>12} {:>12} {:>8} {:<8} {:>9}",
        "design", "sinks", "2w2s µW", "smart µW", "save", "reason", "runtime"
    )
}

/// The suite table's deterministic header (runtime excluded), used for
/// `--out` artifacts that must be byte-identical across resumed runs.
pub fn suite_det_header() -> String {
    format!(
        "{:<8} {:>8} {:>12} {:>12} {:>8} {:<8}",
        "design", "sinks", "2w2s µW", "smart µW", "save", "reason"
    )
}

// ---------------------------------------------------------------------------
// Daemon envelope: id-tagged response, error and event lines.
// ---------------------------------------------------------------------------

/// The daemon's success line for request `id`: the shared result object,
/// embedded verbatim, under an id-tagged envelope.
pub fn response_line(id: u64, resp: &Response) -> String {
    match resp {
        Response::Run(r) => format!(
            "{{\"id\": {id}, \"ok\": true, \"cache\": \"{}\", \"result\": {}}}",
            r.cache.as_str(),
            run_json(r)
        ),
        // The stored result object, embedded verbatim: byte-identical to
        // the envelope the cold run produced (modulo the cache status).
        Response::Replayed(r) => format!(
            "{{\"id\": {id}, \"ok\": true, \"cache\": \"{}\", \"result\": {}}}",
            crate::cache::CacheStatus::StoreHit.as_str(),
            r.run_json
        ),
        Response::Lint(r) => {
            format!("{{\"id\": {id}, \"ok\": true, \"result\": {}}}", lint_json(r))
        }
        Response::Suite(r) => {
            format!("{{\"id\": {id}, \"ok\": true, \"result\": {}}}", suite_json(r))
        }
        Response::Pareto(r) => format!(
            "{{\"id\": {id}, \"ok\": true, \"cache\": \"{}\", \"result\": {}}}",
            r.cache.as_str(),
            pareto_json(r)
        ),
        Response::Import(r) => {
            format!("{{\"id\": {id}, \"ok\": true, \"result\": {}}}", import_json(r))
        }
        Response::ExportNdr(r) => {
            format!("{{\"id\": {id}, \"ok\": true, \"result\": {}}}", export_ndr_json(r))
        }
    }
}

/// The daemon's error line. `id` is `null` when the failing line carried
/// no readable id. Detail lines (e.g. lint diagnostics) ride along.
pub fn error_line(id: Option<u64>, err: &ApiError) -> String {
    let id = match id {
        Some(id) => id.to_string(),
        None => "null".to_owned(),
    };
    let details = if err.details().is_empty() {
        String::new()
    } else {
        let items = err
            .details()
            .iter()
            .map(|d| format!("\"{}\"", json_escape(d)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(", \"details\": [{items}]")
    };
    format!(
        "{{\"id\": {id}, \"error\": {{\"code\": \"{}\", \"message\": \"{}\"{}}}}}",
        err.code().as_str(),
        json_escape(err.message()),
        details,
    )
}

/// One streamed event line for request `id`.
pub fn event_line(id: u64, event: &Event) -> String {
    match event {
        Event::PhaseStart { phase } => {
            format!("{{\"id\": {id}, \"event\": \"phase_start\", \"phase\": \"{phase}\"}}")
        }
        Event::PhaseDone { phase, elapsed } => format!(
            "{{\"id\": {id}, \"event\": \"phase_done\", \"phase\": \"{phase}\", \"elapsed_ms\": {:.3}}}",
            elapsed.as_secs_f64() * 1e3
        ),
        Event::SuiteRow(row) => format!(
            "{{\"id\": {id}, \"event\": \"suite_row\", \"name\": \"{}\", \"failed\": {}}}",
            json_escape(&row.name),
            row.failed
        ),
        Event::StoreQuarantined { scope, detail } => format!(
            "{{\"id\": {id}, \"event\": \"store_quarantined\", \"scope\": \"{scope}\", \
             \"detail\": \"{}\"}}",
            json_escape(detail)
        ),
        Event::FrontPoint { index, eval, replayed } => format!(
            concat!(
                "{{\"id\": {}, \"event\": \"front_point\", \"index\": {}, ",
                "\"power_uw\": {:.6}, \"skew_ps\": {:.6}, \"sigma_skew_ps\": {:.6}, ",
                "\"track_cost_um\": {:.3}, \"meets\": {}, \"replayed\": {}}}"
            ),
            id,
            index,
            eval.objectives.power_uw,
            eval.objectives.skew_ps,
            eval.objectives.sigma_skew_ps,
            eval.objectives.track_cost_um,
            eval.meets,
            replayed,
        ),
    }
}

/// The daemon's post-execution supervision event: the deterministic
/// budget/degradation summary of a finished run, streamed per request so
/// monitoring clients need not parse the full result object.
pub fn supervision_event_line(id: u64, resp: &RunResponse) -> String {
    supervision_event_line_raw(id, &supervision_json(&resp.result, resp.mc_cancelled))
}

/// Same event from an already-rendered supervision object — what a
/// store-replayed run carries.
pub fn supervision_event_line_raw(id: u64, supervision: &str) -> String {
    format!("{{\"id\": {id}, \"event\": \"supervision\", \"supervision\": {supervision}}}")
}

/// Renders `row` exactly as `smart-ndr suite` prints it on stdout.
pub fn suite_stdout_line(row: &SuiteRow) -> String {
    row.stdout_line()
}
