//! A bounded MPMC job queue on `Mutex` + `Condvar` — the daemon's
//! backpressure point.
//!
//! `push` blocks while the queue is full, so a reader thread pumping
//! stdin simply stops consuming input when the workers fall behind; the
//! pipe (or socket buffer) then exerts backpressure on the client. `pop`
//! blocks while the queue is empty and returns `None` once the queue is
//! closed *and* drained, which is how workers learn to exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    capacity: usize,
    /// Signalled when an item is popped (space available).
    space: Condvar,
    /// Signalled when an item is pushed or the queue closes.
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            space: Condvar::new(),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the
    /// item back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.lock();
        while st.items.len() >= self.capacity && !st.closed {
            st = self.space.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.closed {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty. `None`
    /// once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.space.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: `push` starts failing, `pop` drains what is left
    /// and then returns `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Items currently queued (the `stats` queue depth).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_and_drain_on_close() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.push(3).is_err());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2).is_ok());
        // Give the pusher time to block against the full queue.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.depth(), 1, "second push must be blocked, not queued");
        assert_eq!(q.pop(), Some(1));
        assert!(pusher.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn workers_drain_concurrently() {
        let q = Arc::new(BoundedQueue::new(8));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = 0;
                while q.pop().is_some() {
                    got += 1;
                }
                got
            }));
        }
        for i in 0..20 {
            q.push(i).unwrap();
        }
        q.close();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 20);
    }
}
