//! The typed failure for the request → plan → execute pipeline.
//!
//! One error type serves every front end: the CLI maps the code to its
//! process exit code, the daemon writes it as the `error` object of a
//! response line. The codes (and their exit-code mapping) are the same
//! stable contract the CLI has had since the robustness PR.

use std::fmt;

/// Classification of a failed request. The variant decides both the CLI
/// exit code and the machine-readable `code` field of error objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiCode {
    /// Malformed request: bad flags, unknown command, invalid protocol
    /// line — exit 1.
    Usage,
    /// The input design is unreadable, malformed or rejected — exit 3.
    InvalidInput,
    /// The design loads but the flow cannot satisfy it — exit 4.
    Infeasible,
    /// The request died to a panic; the daemon isolated it — exit 4.
    Panicked,
    /// The request was cancelled before it started executing.
    Cancelled,
}

impl ApiCode {
    /// The stable machine-readable code string.
    pub fn as_str(self) -> &'static str {
        match self {
            ApiCode::Usage => "usage",
            ApiCode::InvalidInput => "invalid_input",
            ApiCode::Infeasible => "infeasible",
            ApiCode::Panicked => "panicked",
            ApiCode::Cancelled => "cancelled",
        }
    }

    /// The CLI process exit code for this class of failure.
    pub fn exit_code(self) -> u8 {
        match self {
            ApiCode::Usage => 1,
            ApiCode::InvalidInput => 3,
            ApiCode::Infeasible | ApiCode::Panicked | ApiCode::Cancelled => 4,
        }
    }
}

/// A failed request: classification, message, and optional detail lines
/// (e.g. the individual lint diagnostics behind a rejection) that human
/// front ends print before the error itself.
#[derive(Debug, Clone)]
pub struct ApiError {
    code: ApiCode,
    message: String,
    details: Vec<String>,
}

impl ApiError {
    /// A usage error (exit 1).
    pub fn usage(msg: impl Into<String>) -> Self {
        ApiError { code: ApiCode::Usage, message: msg.into(), details: Vec::new() }
    }

    /// An invalid-input error (exit 3).
    pub fn invalid(msg: impl Into<String>) -> Self {
        ApiError { code: ApiCode::InvalidInput, message: msg.into(), details: Vec::new() }
    }

    /// An infeasible-constraints error (exit 4).
    pub fn infeasible(msg: impl Into<String>) -> Self {
        ApiError { code: ApiCode::Infeasible, message: msg.into(), details: Vec::new() }
    }

    /// An isolated panic (exit 4).
    pub fn panicked(msg: impl Into<String>) -> Self {
        ApiError { code: ApiCode::Panicked, message: msg.into(), details: Vec::new() }
    }

    /// A cancelled-before-start request.
    pub fn cancelled(msg: impl Into<String>) -> Self {
        ApiError { code: ApiCode::Cancelled, message: msg.into(), details: Vec::new() }
    }

    /// Returns a copy carrying detail lines to print before the message.
    pub fn with_details(mut self, details: Vec<String>) -> Self {
        self.details = details;
        self
    }

    /// The error classification.
    pub fn code(&self) -> ApiCode {
        self.code
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Detail lines (possibly empty) to surface before the message.
    pub fn details(&self) -> &[String] {
        &self.details
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ApiError {}
