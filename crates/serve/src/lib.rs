//! `snr-serve`: the typed request→plan→execute API behind both the
//! `smart-ndr` CLI and its resident daemon (`smart-ndr serve`).
//!
//! The crate splits flow execution into three explicit stages:
//!
//! 1. **Request** ([`request`]) — a typed, validated description of what
//!    the caller wants ([`Request`]), parsed either from CLI flags or
//!    from a line-delimited JSON envelope ([`Envelope`]).
//! 2. **Plan** ([`plan`]) — a fully resolved work order ([`Plan`]): design
//!    bytes located, technology chosen, budgets and parallelism pinned,
//!    plus the content-hash [`CacheKey`] that names the warm parse+CTS
//!    artifact this work depends on.
//! 3. **Execute** ([`exec`]) — [`execute`] runs a plan inside an
//!    [`ExecCtx`] that optionally carries a [`WarmCache`], a streaming
//!    event sink, and a cancellation-token hook. The CLI runs it with
//!    [`ExecCtx::oneshot`]; the daemon attaches all three.
//!
//! Rendering ([`render`]) is the single serializer for both entry points,
//! so `run --json` output and daemon responses cannot drift; the daemon
//! loop itself lives in [`server`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod error;
pub mod exec;
pub mod json;
pub mod plan;
pub mod queue;
pub mod render;
pub mod request;
pub mod server;

pub use cache::{CacheKey, CacheStatus, WarmCache};
pub use error::{ApiCode, ApiError};
pub use exec::{
    execute, Event, ExecCtx, ExportNdrResponse, ImportResponse, LintResponse, ParetoFrontRow,
    ParetoResponse, ReplayedRun, Response, RunResponse, SuiteResponse, SuiteRow,
};
pub use plan::{plan, ExportNdrPlan, ImportPlan, LintPlan, ParetoPlan, Plan, RunPlan, SuitePlan};
pub use request::{
    CacheMode, Control, DesignSource, Envelope, ExportNdrRequest, ImportRequest, LintRequest,
    Method, Op, ParetoRequest, Request, RunRequest, SuiteRequest, SuiteSource, TechId,
};
pub use server::{serve_stdio, ServeConfig, ServerState};
pub use snr_store::{Lookup, QuarantineReason, ResultStore, StoreKind, StoreStats};

#[cfg(feature = "fault-inject")]
pub use snr_store::faultinject::{corrupt_entry, StoreFault};

#[cfg(feature = "fault-inject")]
pub use request::ServeFault;

#[cfg(unix)]
pub use server::serve_socket;
