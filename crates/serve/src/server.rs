//! The resident daemon: line-delimited JSON requests over stdin/stdout
//! (or a Unix socket), scheduled onto a bounded worker pool with warm
//! caches and per-request isolation.
//!
//! # Protocol
//!
//! One JSON object per line in, one-or-more JSON lines out:
//!
//! * job requests (`"op": "run" | "lint" | "suite"`) carry a caller-chosen
//!   numeric `"id"`; every line the daemon emits for that request echoes
//!   it. A job produces zero or more `"event"` lines (accepted, phase
//!   start/done, suite rows, supervision) followed by exactly one final
//!   line: `{"id": N, "ok": true, ...}` or `{"id": N, "error": {...}}`.
//! * control requests (`"op": "stats" | "cancel" | "shutdown"`) are
//!   answered immediately by the reader thread, ahead of queued jobs.
//!
//! # Backpressure
//!
//! At most `queue_capacity` jobs wait behind the workers; when the queue
//! is full the reader stops consuming input, so the OS pipe/socket buffer
//! fills and the client blocks on write. Nothing is dropped.
//!
//! # Isolation
//!
//! Each job runs inside `catch_unwind` on its worker: a poisoned request
//! becomes an `{"error": {"code": "panicked"}}` response and the daemon
//! keeps serving. EOF (or `"op": "shutdown"`) stops intake, drains the
//! queue, and returns cleanly — exit code 0.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use snr_core::panic_message;
use snr_par::{CancelToken, Parallelism};

use crate::cache::WarmCache;
use crate::error::ApiError;
use crate::exec::{execute, Event, ExecCtx, Response};
use crate::json::Json;
use crate::plan::plan;
use crate::queue::BoundedQueue;
use crate::render::{
    error_line, event_line, response_line, supervision_event_line, supervision_event_line_raw,
};
use crate::request::{Control, Envelope, Op, Request};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent job workers.
    pub workers: usize,
    /// Bounded queue depth (the backpressure point).
    pub queue_capacity: usize,
    /// Warm-cache entry cap.
    pub cache_capacity: usize,
    /// Durable result-store directory (`--store <DIR>`); `None` keeps the
    /// daemon disk-free.
    pub store_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: Parallelism::auto().jobs(),
            queue_capacity: 64,
            cache_capacity: 32,
            store_dir: None,
        }
    }
}

/// Aggregated per-phase wall-clock timing.
#[derive(Debug, Default, Clone, Copy)]
struct PhaseStat {
    count: u64,
    total: Duration,
}

/// Request counters for `stats`.
#[derive(Debug, Default)]
struct Counters {
    received: u64,
    completed: u64,
    errors: u64,
    panics: u64,
    cancelled: u64,
}

/// Where a job sits for cancellation purposes.
enum CancelSlot {
    /// Still queued; `true` once a cancel arrived before it started.
    Queued(bool),
    /// Executing, with its live cancellation token.
    Running(CancelToken),
}

/// State shared by the reader and every worker — and, in socket mode, by
/// successive connections: the warm cache outlives any one client.
pub struct ServerState {
    cache: Mutex<WarmCache>,
    store: Option<snr_store::ResultStore>,
    counters: Mutex<Counters>,
    phases: Mutex<BTreeMap<&'static str, PhaseStat>>,
    cancels: Mutex<HashMap<u64, CancelSlot>>,
    workers: usize,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ServerState {
    /// Fresh state for `config`.
    pub fn new(config: &ServeConfig) -> Self {
        // The store is strictly additive: if the directory cannot be
        // opened the daemon still serves, it just recomputes everything.
        let store = config.store_dir.as_deref().and_then(|dir| {
            match snr_store::ResultStore::open(dir) {
                Ok(store) => Some(store),
                Err(e) => {
                    eprintln!("serve: result store disabled ({}: {e})", dir.display());
                    None
                }
            }
        });
        ServerState {
            cache: Mutex::new(WarmCache::new(config.cache_capacity)),
            store,
            counters: Mutex::new(Counters::default()),
            phases: Mutex::new(BTreeMap::new()),
            cancels: Mutex::new(HashMap::new()),
            workers: config.workers.max(1),
        }
    }

    fn record_phase(&self, phase: &'static str, elapsed: Duration) {
        let mut phases = lock(&self.phases);
        let stat = phases.entry(phase).or_default();
        stat.count += 1;
        stat.total += elapsed;
    }

    fn stats_json(&self, queue: &BoundedQueue<Job>) -> String {
        let c = lock(&self.counters);
        let (hits, misses, entries, cache_cap) = {
            let cache = lock(&self.cache);
            (cache.hits(), cache.misses(), cache.len(), cache.capacity())
        };
        let phases = lock(&self.phases)
            .iter()
            .map(|(name, s)| {
                format!(
                    "\"{name}\": {{\"count\": {}, \"total_ms\": {:.3}}}",
                    s.count,
                    s.total.as_secs_f64() * 1e3
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let store = match &self.store {
            Some(store) => {
                let s = store.stats();
                format!(
                    "{{\"enabled\": true, \"hits\": {}, \"misses\": {}, \
                     \"quarantined\": {}, \"writes\": {}}}",
                    s.hits, s.misses, s.quarantined, s.writes
                )
            }
            None => "{\"enabled\": false}".to_owned(),
        };
        format!(
            concat!(
                "{{\"requests\": {{\"received\": {}, \"completed\": {}, \"errors\": {}, ",
                "\"panics\": {}, \"cancelled\": {}}}, ",
                "\"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}, \"capacity\": {}}}, ",
                "\"store\": {}, ",
                "\"queue\": {{\"depth\": {}, \"capacity\": {}}}, ",
                "\"workers\": {}, \"phases\": {{{}}}}}"
            ),
            c.received,
            c.completed,
            c.errors,
            c.panics,
            c.cancelled,
            hits,
            misses,
            entries,
            cache_cap,
            store,
            queue.depth(),
            queue.capacity(),
            self.workers,
            phases,
        )
    }
}

/// One scheduled job.
struct Job {
    id: u64,
    req: Request,
}

/// Writes one protocol line and flushes, so clients see it immediately.
fn send<W: Write>(out: &Mutex<W>, line: &str) {
    let mut out = lock(out);
    // A broken pipe means the client is gone; the daemon keeps draining
    // its queue (journal-style side effects still matter) and exits on
    // EOF as usual.
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn worker_loop<W: Write + Send>(state: &ServerState, queue: &BoundedQueue<Job>, out: &Mutex<W>) {
    while let Some(job) = queue.pop() {
        let id = job.id;
        // A cancel that arrived while the job was still queued wins: the
        // job never executes.
        let pre_cancelled = matches!(
            lock(&state.cancels).get(&id),
            Some(CancelSlot::Queued(true))
        );
        if pre_cancelled {
            lock(&state.cancels).remove(&id);
            lock(&state.counters).cancelled += 1;
            send(out, &error_line(Some(id), &ApiError::cancelled("cancelled while queued")));
            continue;
        }

        let result = catch_unwind(AssertUnwindSafe(|| {
            let plan = plan(&job.req)?;
            let sink = |event: &Event| {
                if let Event::PhaseDone { phase, elapsed } = event {
                    state.record_phase(phase, *elapsed);
                }
                send(out, &event_line(id, event));
            };
            let on_token = |token: &CancelToken| {
                lock(&state.cancels).insert(id, CancelSlot::Running(token.clone()));
            };
            let ctx = ExecCtx {
                cache: Some(&state.cache),
                store: state.store.as_ref(),
                sink: Some(&sink),
                on_token: Some(&on_token),
            };
            execute(&plan, &ctx)
        }));
        lock(&state.cancels).remove(&id);
        // Count before sending: the response line is the client's signal
        // that the request is settled, so a `stats` issued right after it
        // must already see this request in the counters.
        match result {
            Ok(Ok(resp)) => {
                lock(&state.counters).completed += 1;
                match &resp {
                    Response::Run(run) => send(out, &supervision_event_line(id, run)),
                    Response::Replayed(r) => {
                        send(out, &supervision_event_line_raw(id, &r.supervision));
                    }
                    _ => {}
                }
                send(out, &response_line(id, &resp));
            }
            Ok(Err(err)) => {
                lock(&state.counters).errors += 1;
                send(out, &error_line(Some(id), &err));
            }
            Err(payload) => {
                let err = ApiError::panicked(format!(
                    "request panicked: {} (request isolated; daemon still serving)",
                    panic_message(&*payload, 120)
                ));
                lock(&state.counters).panics += 1;
                send(out, &error_line(Some(id), &err));
            }
        }
    }
}

/// Handles one control operation on the reader thread.
fn handle_control<W: Write>(
    state: &ServerState,
    queue: &BoundedQueue<Job>,
    out: &Mutex<W>,
    id: Option<u64>,
    control: &Control,
) -> bool {
    let id_text = id.map_or_else(|| "null".to_owned(), |i| i.to_string());
    match control {
        Control::Stats => {
            send(
                out,
                &format!(
                    "{{\"id\": {id_text}, \"ok\": true, \"result\": {}}}",
                    state.stats_json(queue)
                ),
            );
            false
        }
        Control::Cancel { target } => {
            let disposition = {
                let mut cancels = lock(&state.cancels);
                match cancels.get_mut(target) {
                    Some(CancelSlot::Queued(requested)) => {
                        *requested = true;
                        "queued"
                    }
                    Some(CancelSlot::Running(token)) => {
                        token.cancel();
                        "running"
                    }
                    None => "unknown",
                }
            };
            send(
                out,
                &format!(
                    "{{\"id\": {id_text}, \"ok\": true, \"result\": \
                     {{\"target\": {target}, \"state\": \"{disposition}\"}}}}"
                ),
            );
            false
        }
        Control::Shutdown => {
            send(
                out,
                &format!(
                    "{{\"id\": {id_text}, \"ok\": true, \"result\": \
                     {{\"shutdown\": true, \"pending\": {}}}}}",
                    queue.depth()
                ),
            );
            true
        }
    }
}

/// Runs the daemon over one input/output pair until EOF or `shutdown`.
///
/// Returns `true` when the client asked for shutdown (socket mode uses
/// this to stop accepting further connections).
///
/// # Errors
///
/// Only genuine input-stream I/O errors; protocol problems become error
/// lines, never process failures.
pub fn serve_io<R: BufRead, W: Write + Send>(
    state: &ServerState,
    config: &ServeConfig,
    input: R,
    output: W,
) -> io::Result<bool> {
    let queue = BoundedQueue::new(config.queue_capacity);
    let out = Mutex::new(output);
    let mut shutdown = false;

    std::thread::scope(|scope| -> io::Result<()> {
        for _ in 0..state.workers {
            scope.spawn(|| worker_loop(state, &queue, &out));
        }

        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let parsed = match Json::parse(&line) {
                Ok(v) => v,
                Err(e) => {
                    send(&out, &error_line(None, &ApiError::usage(e.to_string())));
                    continue;
                }
            };
            // Best-effort id for error reporting on malformed envelopes.
            let raw_id = parsed.get("id").and_then(Json::as_u64);
            let envelope = match Envelope::from_json(&parsed) {
                Ok(env) => env,
                Err(e) => {
                    send(&out, &error_line(raw_id, &e));
                    continue;
                }
            };
            match envelope.op {
                Op::Control(control) => {
                    if handle_control(state, &queue, &out, envelope.id, &control) {
                        shutdown = true;
                        break;
                    }
                }
                Op::Job(req) => {
                    let id = match envelope.id {
                        Some(id) => id,
                        None => unreachable!("Envelope::from_json enforces ids on jobs"),
                    };
                    {
                        let mut cancels = lock(&state.cancels);
                        if cancels.contains_key(&id) {
                            drop(cancels);
                            send(
                                &out,
                                &error_line(
                                    Some(id),
                                    &ApiError::usage(format!(
                                        "id {id} is already queued or running"
                                    )),
                                ),
                            );
                            continue;
                        }
                        cancels.insert(id, CancelSlot::Queued(false));
                    }
                    lock(&state.counters).received += 1;
                    send(
                        &out,
                        &format!(
                            "{{\"id\": {id}, \"event\": \"accepted\", \"queue_depth\": {}}}",
                            queue.depth()
                        ),
                    );
                    // Blocks while the queue is full: backpressure.
                    if queue.push(Job { id, req }).is_err() {
                        send(
                            &out,
                            &error_line(
                                Some(id),
                                &ApiError::cancelled("daemon is shutting down"),
                            ),
                        );
                    }
                }
            }
        }
        // EOF or shutdown: stop intake, let the workers drain the queue.
        queue.close();
        Ok(())
    })?;
    Ok(shutdown)
}

/// Runs the daemon over this process's stdin/stdout until EOF or
/// `shutdown`.
///
/// # Errors
///
/// Only stdin I/O errors; see [`serve_io`].
pub fn serve_stdio(config: &ServeConfig) -> io::Result<()> {
    let state = ServerState::new(config);
    let stdin = io::stdin();
    serve_io(&state, config, stdin.lock(), io::stdout()).map(|_| ())
}

/// Runs the daemon on a Unix socket, one connection at a time; the warm
/// cache and statistics persist across connections. A `shutdown` request
/// (or removing the socket) stops the accept loop.
///
/// # Errors
///
/// Socket bind/accept failures.
#[cfg(unix)]
pub fn serve_socket(config: &ServeConfig, path: &std::path::Path) -> io::Result<()> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous daemon would fail the bind.
    match std::fs::remove_file(path) {
        Err(e) if e.kind() != io::ErrorKind::NotFound => return Err(e),
        _ => {}
    }
    let listener = UnixListener::bind(path)?;
    let state = ServerState::new(config);
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = io::BufReader::new(stream.try_clone()?);
        match serve_io(&state, config, reader, stream) {
            Ok(true) => break,
            Ok(false) => {}
            // One broken connection must not kill the daemon.
            Err(e) => eprintln!("serve: connection error: {e}"),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}
