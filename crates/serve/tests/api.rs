//! Integration tests for the request→plan→execute API and the in-process
//! daemon loop (`serve_io` driven over in-memory pipes).

use std::io::{Cursor, Write};
use std::sync::{Arc, Mutex};

use snr_serve::json::Json;
use snr_serve::render::{response_line, run_json};
use snr_serve::{
    execute, plan, CacheMode, CacheStatus, DesignSource, Event, ExecCtx, Request, Response,
    RunRequest, ServeConfig, ServerState, WarmCache,
};

fn gen_request(sinks: usize, seed: u64) -> Request {
    Request::Run(RunRequest::new(DesignSource::Generate { sinks, seed, freq_ghz: 1.0 }))
}

fn run_response(req: &Request, ctx: &ExecCtx<'_>) -> snr_serve::RunResponse {
    let plan = plan(req).expect("plan");
    match execute(&plan, ctx).expect("execute") {
        Response::Run(r) => *r,
        other => panic!("expected a run response, got {other:?}"),
    }
}

#[test]
fn oneshot_run_executes_without_a_cache() {
    let resp = run_response(&gen_request(40, 2), &ExecCtx::oneshot());
    assert_eq!(resp.cache, CacheStatus::Off);
    assert!(resp.result.power().network_uw() > 0.0);
    assert!(
        resp.result.power().network_uw() <= resp.baseline.power().network_uw(),
        "optimized result must not exceed the conservative baseline"
    );
}

#[test]
fn warm_cache_misses_then_hits_and_shares_artifacts() {
    let cache = Mutex::new(WarmCache::new(8));
    let ctx = ExecCtx { cache: Some(&cache), store: None, sink: None, on_token: None };
    let req = gen_request(40, 2);

    let first = run_response(&req, &ctx);
    let second = run_response(&req, &ctx);
    assert_eq!(first.cache, CacheStatus::Miss);
    assert_eq!(second.cache, CacheStatus::Hit);
    assert!(
        Arc::ptr_eq(&first.design, &second.design) && Arc::ptr_eq(&first.tree, &second.tree),
        "a hit must reuse the cached parse+CTS artifacts, not rebuild them"
    );

    let guard = cache.lock().expect("cache lock");
    assert_eq!((guard.hits(), guard.misses(), guard.len()), (1, 1, 1));
}

#[test]
fn cache_off_bypasses_an_attached_cache() {
    let cache = Mutex::new(WarmCache::new(8));
    let ctx = ExecCtx { cache: Some(&cache), store: None, sink: None, on_token: None };
    let mut req = RunRequest::new(DesignSource::Generate { sinks: 40, seed: 2, freq_ghz: 1.0 });
    req.cache = CacheMode::Off;

    let resp = run_response(&Request::Run(req), &ctx);
    assert_eq!(resp.cache, CacheStatus::Off);
    let guard = cache.lock().expect("cache lock");
    assert!(guard.is_empty(), "cache=off must not populate the cache");
    assert_eq!((guard.hits(), guard.misses()), (0, 0));
}

#[test]
fn response_envelope_embeds_run_json_byte_identically() {
    let resp = run_response(&gen_request(40, 2), &ExecCtx::oneshot());
    let body = run_json(&resp);
    let line = response_line(7, &Response::Run(Box::new(resp)));
    assert_eq!(
        line,
        format!("{{\"id\": 7, \"ok\": true, \"cache\": \"off\", \"result\": {body}}}"),
        "the daemon envelope must embed the shared serializer's output verbatim"
    );
    Json::parse(&line).expect("envelope must be valid JSON");
}

#[test]
fn events_bracket_every_phase_in_order() {
    let events = Mutex::new(Vec::new());
    let sink = |e: &Event| {
        let tag = match e {
            Event::PhaseStart { phase } => format!("start:{phase}"),
            Event::PhaseDone { phase, .. } => format!("done:{phase}"),
            Event::SuiteRow(_) => "row".to_owned(),
            Event::StoreQuarantined { scope, .. } => format!("quarantine:{scope}"),
            Event::FrontPoint { index, .. } => format!("front:{index}"),
        };
        events.lock().expect("events lock").push(tag);
    };
    let ctx = ExecCtx { cache: None, store: None, sink: Some(&sink), on_token: None };
    run_response(&gen_request(40, 2), &ctx);
    assert_eq!(
        events.lock().expect("events lock").as_slice(),
        [
            "start:parse",
            "done:parse",
            "start:cts",
            "done:cts",
            "start:optimize",
            "done:optimize"
        ],
    );
}

/// A `Write` the test can read back after `serve_io` consumed it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn lines(&self) -> Vec<String> {
        let buf = self.0.lock().expect("buffer lock");
        String::from_utf8(buf.clone())
            .expect("protocol output must be UTF-8")
            .lines()
            .map(str::to_owned)
            .collect()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn serve(state: &ServerState, config: &ServeConfig, input: &str) -> (Vec<String>, bool) {
    let out = SharedBuf::default();
    let shutdown = snr_serve::server::serve_io(state, config, Cursor::new(input.to_owned()), out.clone())
        .expect("serve_io");
    (out.lines(), shutdown)
}

fn line_for(lines: &[String], pred: impl Fn(&Json) -> bool) -> Option<&String> {
    lines.iter().find(|l| Json::parse(l).is_ok_and(|v| pred(&v)))
}

/// The final (non-event) line for request `id`, parsed.
fn final_line(lines: &[String], id: u64) -> Json {
    let line = line_for(lines, |v| {
        v.get("id").and_then(Json::as_u64) == Some(id) && v.get("event").is_none()
    })
    .unwrap_or_else(|| panic!("no final line for id {id} in {lines:?}"));
    Json::parse(line).expect("valid JSON")
}

#[test]
fn serve_io_runs_jobs_and_persists_the_cache_across_connections() {
    let config = ServeConfig { workers: 1, queue_capacity: 4, cache_capacity: 8, store_dir: None };
    let state = ServerState::new(&config);
    let request = r#"{"op": "run", "id": 1, "design": {"generate": {"sinks": 40, "seed": 2}}}"#;

    let (lines, shutdown) = serve(&state, &config, &format!("{request}\n"));
    assert!(!shutdown, "EOF is not a shutdown request");
    assert!(
        line_for(&lines, |v| v.get("event").and_then(Json::as_str) == Some("accepted")).is_some(),
        "job must be acknowledged on intake: {lines:?}"
    );
    let first = final_line(&lines, 1);
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));

    // Same state, new connection (socket-mode shape): the warm cache
    // survives, so the identical request is a hit.
    let (lines, _) = serve(&state, &config, &format!("{request}\n"));
    let second = final_line(&lines, 1);
    assert_eq!(second.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
}

#[test]
fn serve_io_reports_malformed_lines_and_keeps_serving() {
    let config = ServeConfig { workers: 1, queue_capacity: 4, cache_capacity: 8, store_dir: None };
    let state = ServerState::new(&config);
    let input = concat!(
        "this is not json\n",
        "{\"op\": \"frobnicate\", \"id\": 9}\n",
        "{\"op\": \"run\", \"id\": 2, \"design\": {\"generate\": {\"sinks\": 40, \"seed\": 2}}}\n",
    );
    let (lines, _) = serve(&state, &config, input);

    let garbage = Json::parse(&lines[0]).expect("error line is JSON");
    assert!(matches!(garbage.get("id"), Some(Json::Null)), "unparseable line has no id");
    assert_eq!(
        garbage.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("usage")
    );

    let unknown_op = final_line(&lines, 9);
    assert_eq!(
        unknown_op.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("usage")
    );

    let ok = final_line(&lines, 2);
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn shutdown_acknowledges_and_stops_the_loop() {
    let config = ServeConfig { workers: 1, queue_capacity: 4, cache_capacity: 8, store_dir: None };
    let state = ServerState::new(&config);
    let (lines, shutdown) = serve(
        &state,
        &config,
        "{\"op\": \"shutdown\", \"id\": 5}\n{\"op\": \"stats\"}\n",
    );
    assert!(shutdown);
    let ack = final_line(&lines, 5);
    assert_eq!(
        ack.get("result").and_then(|r| r.get("shutdown")).and_then(Json::as_bool),
        Some(true)
    );
    assert!(
        line_for(&lines, |v| v.get("result").is_some_and(|r| r.get("queue").is_some())).is_none(),
        "lines after shutdown must not be processed: {lines:?}"
    );
}

#[test]
fn stats_reports_cache_queue_and_phase_timings() {
    let config = ServeConfig { workers: 1, queue_capacity: 4, cache_capacity: 8, store_dir: None };
    let state = ServerState::new(&config);
    let request = |id: u64| {
        format!("{{\"op\": \"run\", \"id\": {id}, \"design\": {{\"generate\": {{\"sinks\": 40, \"seed\": 2}}}}}}")
    };
    // First connection does the work; the second only asks for stats, so
    // the counters it sees are settled (serve_io joins its workers).
    serve(&state, &config, &format!("{}\n{}\n", request(1), request(2)));
    let (lines, _) = serve(&state, &config, "{\"op\": \"stats\", \"id\": 3}\n");

    let stats = final_line(&lines, 3);
    let result = stats.get("result").expect("stats result");
    let cache = result.get("cache").expect("cache section");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    let requests = result.get("requests").expect("requests section");
    assert_eq!(requests.get("received").and_then(Json::as_u64), Some(2));
    assert_eq!(requests.get("completed").and_then(Json::as_u64), Some(2));
    let phases = result.get("phases").expect("phases section");
    for phase in ["parse", "cts", "optimize"] {
        let count = phases
            .get(phase)
            .and_then(|p| p.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing phase {phase}: {lines:?}"));
        // parse+cts run once (second request was a cache hit); optimize
        // runs per request.
        let want = if phase == "optimize" { 2 } else { 1 };
        assert_eq!(count, want, "phase {phase}");
    }
}

#[test]
fn cancel_of_an_unknown_id_reports_unknown() {
    let config = ServeConfig { workers: 1, queue_capacity: 4, cache_capacity: 8, store_dir: None };
    let state = ServerState::new(&config);
    let (lines, _) = serve(&state, &config, "{\"op\": \"cancel\", \"id\": 4, \"target\": 99}\n");
    let ack = final_line(&lines, 4);
    assert_eq!(
        ack.get("result").and_then(|r| r.get("state")).and_then(Json::as_str),
        Some("unknown")
    );
}

#[cfg(feature = "fault-inject")]
#[test]
fn poisoned_request_fails_in_isolation_while_neighbors_succeed() {
    let config = ServeConfig { workers: 1, queue_capacity: 4, cache_capacity: 8, store_dir: None };
    let state = ServerState::new(&config);
    let input = concat!(
        "{\"op\": \"run\", \"id\": 1, \"design\": {\"generate\": {\"sinks\": 40, \"seed\": 2}}, ",
        "\"fault\": \"panic\"}\n",
        "{\"op\": \"run\", \"id\": 2, \"design\": {\"generate\": {\"sinks\": 40, \"seed\": 2}}}\n",
    );
    // Silence the default panic hook's backtrace spam for the injected
    // panic; restore it afterwards so other tests report normally.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (lines, _) = serve(&state, &config, input);
    std::panic::set_hook(prev);

    let poisoned = final_line(&lines, 1);
    assert_eq!(
        poisoned.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("panicked"),
        "poisoned request must fail with a typed error: {lines:?}"
    );
    let healthy = final_line(&lines, 2);
    assert_eq!(
        healthy.get("ok").and_then(Json::as_bool),
        Some(true),
        "the daemon must keep serving after a poisoned request: {lines:?}"
    );
}

/// Fresh per-test store directory under the system temp dir.
fn store_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("snr-serve-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn entry_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    if let Ok(rd) = std::fs::read_dir(dir.join("entries").join("run")) {
        for e in rd.flatten() {
            if e.path().extension().is_some_and(|x| x == "entry") {
                out.push(e.path());
            }
        }
    }
    out.sort();
    out
}

#[test]
fn store_replays_across_restarts_byte_identically() {
    let dir = store_dir("replay");
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 8,
        store_dir: Some(dir.clone()),
    };
    let request = r#"{"op": "run", "id": 1, "json": true, "design": {"generate": {"sinks": 40, "seed": 2}}}"#;

    // Cold daemon: compute, persist.
    let state = ServerState::new(&config);
    let (cold, _) = serve(&state, &config, &format!("{request}\n"));
    let cold_final = final_line(&cold, 1);
    assert_eq!(cold_final.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(entry_files(&dir).len(), 1, "clean run must persist one entry");

    // "Restarted" daemon: fresh memory cache, same store directory.
    let state = ServerState::new(&config);
    let (warm, _) = serve(&state, &config, &format!("{request}\n"));
    let warm_final = final_line(&warm, 1);
    assert_eq!(
        warm_final.get("cache").and_then(Json::as_str),
        Some("store_hit"),
        "restart must replay from disk: {warm:?}"
    );

    // The replayed result and supervision lines are the cold run's bytes;
    // only the envelope's cache tag differs.
    let cold_line = cold.iter().find(|l| l.contains("\"ok\": true")).expect("cold final");
    let warm_line = warm.iter().find(|l| l.contains("\"ok\": true")).expect("warm final");
    assert_eq!(
        warm_line.replace("\"cache\": \"store_hit\"", "\"cache\": \"miss\""),
        *cold_line,
        "replayed result must be byte-identical to the cold run"
    );
    let cold_sup = cold.iter().find(|l| l.contains("\"event\": \"supervision\"")).expect("cold");
    let warm_sup = warm.iter().find(|l| l.contains("\"event\": \"supervision\"")).expect("warm");
    assert_eq!(warm_sup, cold_sup, "replayed supervision must be byte-identical");

    // Stats surface the store section.
    let (lines, _) = serve(&state, &config, "{\"op\": \"stats\", \"id\": 9}\n");
    let store = final_line(&lines, 9);
    let store = store.get("result").and_then(|r| r.get("store")).expect("store section");
    assert_eq!(store.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(store.get("hits").and_then(Json::as_u64), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_entry_quarantines_and_recomputes() {
    let dir = store_dir("quarantine");
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 8,
        store_dir: Some(dir.clone()),
    };
    let request = r#"{"op": "run", "id": 1, "design": {"generate": {"sinks": 40, "seed": 2}}}"#;

    let state = ServerState::new(&config);
    serve(&state, &config, &format!("{request}\n"));
    let entries = entry_files(&dir);
    assert_eq!(entries.len(), 1);

    // Flip one bit in the persisted payload: a torn/corrupted entry.
    let mut bytes = std::fs::read(&entries[0]).expect("read entry");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&entries[0], &bytes).expect("rewrite entry");

    let state = ServerState::new(&config);
    let (lines, _) = serve(&state, &config, &format!("{request}\n"));
    let quarantine = line_for(&lines, |v| {
        v.get("event").and_then(Json::as_str) == Some("store_quarantined")
    });
    assert!(quarantine.is_some(), "corruption must surface as an event: {lines:?}");
    let fin = final_line(&lines, 1);
    assert_eq!(fin.get("ok").and_then(Json::as_bool), Some(true), "{lines:?}");
    assert_eq!(
        fin.get("cache").and_then(Json::as_str),
        Some("miss"),
        "a quarantined entry is a miss, never a stale hit"
    );

    // The bad entry moved to corrupt/ and the slot was re-written clean.
    let corpses = std::fs::read_dir(dir.join("corrupt")).expect("corrupt dir").count();
    assert_eq!(corpses, 1, "quarantine must preserve the evidence");
    assert_eq!(entry_files(&dir).len(), 1, "the clean recompute must heal the slot");

    let (lines, _) = serve(&state, &config, "{\"op\": \"stats\", \"id\": 9}\n");
    let stats = final_line(&lines, 9);
    let store = stats.get("result").and_then(|r| r.get("store")).expect("store section");
    assert_eq!(store.get("quarantined").and_then(Json::as_u64), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_off_requests_bypass_the_store_entirely() {
    let dir = store_dir("bypass");
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 8,
        store_dir: Some(dir.clone()),
    };
    let request = r#"{"op": "run", "id": 1, "cache": "off", "design": {"generate": {"sinks": 40, "seed": 2}}}"#;
    let state = ServerState::new(&config);
    let (lines, _) = serve(&state, &config, &format!("{request}\n"));
    let fin = final_line(&lines, 1);
    assert_eq!(fin.get("cache").and_then(Json::as_str), Some("off"));
    assert!(entry_files(&dir).is_empty(), "cache=off must not write to the store");
    let _ = std::fs::remove_dir_all(&dir);
}
