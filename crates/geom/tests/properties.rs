//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use snr_geom::{rmst_length, Point, PointF, Rect, Trr};

fn arb_point() -> impl Strategy<Value = Point> {
    (-1_000_000i64..1_000_000, -1_000_000i64..1_000_000).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn manhattan_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn manhattan_symmetry_and_identity(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(a), 0);
        prop_assert!(a.manhattan(b) >= 0);
    }

    #[test]
    fn chebyshev_lower_bounds_manhattan(a in arb_point(), b in arb_point()) {
        prop_assert!(a.chebyshev(b) <= a.manhattan(b));
        prop_assert!(a.manhattan(b) <= 2 * a.chebyshev(b));
    }

    #[test]
    fn rotated_space_turns_manhattan_into_chebyshev(a in arb_point(), b in arb_point()) {
        let du = (a.u() - b.u()).abs();
        let dv = (a.v() - b.v()).abs();
        prop_assert_eq!(a.manhattan(b), du.max(dv));
    }

    #[test]
    fn rect_intersection_contained_in_both(a in arb_point(), b in arb_point(),
                                           c in arb_point(), d in arb_point()) {
        let r1 = Rect::new(a, b);
        let r2 = Rect::new(c, d);
        if let Some(i) = r1.intersect(&r2) {
            prop_assert!(r1.contains_rect(&i));
            prop_assert!(r2.contains_rect(&i));
        } else {
            // Disjoint rectangles have strictly positive separation in one axis.
            prop_assert!(r1.distance_to(r2.lo()) > 0 || r1.distance_to(r2.hi()) > 0);
        }
    }

    #[test]
    fn rect_union_contains_both(a in arb_point(), b in arb_point(),
                                c in arb_point(), d in arb_point()) {
        let r1 = Rect::new(a, b);
        let r2 = Rect::new(c, d);
        let u = r1.union(&r2);
        prop_assert!(u.contains_rect(&r1));
        prop_assert!(u.contains_rect(&r2));
    }

    /// The defining DME property: expanding two point regions by radii that
    /// sum to their distance always produces a non-empty merging region, and
    /// every point of it respects both radii.
    #[test]
    fn merging_region_respects_radii(a in arb_point(), b in arb_point(), split in 0.0f64..=1.0) {
        let ta = Trr::point(a.to_f64());
        let tb = Trr::point(b.to_f64());
        let d = ta.distance(&tb);
        let ea = d * split;
        let eb = d - ea;
        let m = ta.expand(ea).intersect(&tb.expand(eb));
        prop_assert!(m.is_some(), "exact-radius merge must be non-empty");
        let m = m.unwrap();
        let tol = 1e-6 * (1.0 + d);
        for p in [m.center(), m.closest_to(a.to_f64()), m.closest_to(b.to_f64())] {
            prop_assert!(ta.distance_to_point(p) <= ea + tol);
            prop_assert!(tb.distance_to_point(p) <= eb + tol);
        }
    }

    #[test]
    fn closest_to_is_a_true_projection(a in arb_point(), r in 0.0f64..10_000.0, q in arb_point()) {
        let region = Trr::point(a.to_f64()).expand(r);
        let proj = region.closest_to(q.to_f64());
        // The projection lies in the region...
        prop_assert!(region.distance_to_point(proj) <= 1e-6);
        // ...and achieves the region-to-point distance.
        let d = region.distance_to_point(q.to_f64());
        prop_assert!((proj.manhattan(q.to_f64()) - d).abs() <= 1e-6 * (1.0 + d));
    }

    /// RMST invariants: order-insensitive, bounded below by the bbox
    /// half-perimeter, bounded above by a chain visiting points in input
    /// order.
    #[test]
    fn rmst_bounds(pts in proptest::collection::vec(arb_point(), 2..40)) {
        let len = rmst_length(&pts);
        let hp = Rect::bounding(pts.iter().copied()).unwrap().half_perimeter();
        prop_assert!(len >= hp);
        let chain: i64 = pts.windows(2).map(|w| w[0].manhattan(w[1])).sum();
        prop_assert!(len <= chain);
        let mut rev = pts.clone();
        rev.reverse();
        prop_assert_eq!(rmst_length(&rev), len);
    }

    #[test]
    fn uv_roundtrip(a in arb_point()) {
        let f = PointF::from_uv(a.u() as f64, a.v() as f64);
        prop_assert_eq!(f.snap(), a);
    }
}
