//! Rectilinear minimum spanning trees.
//!
//! The RMST length over a net's pins is the standard lower-bound-ish
//! yardstick for routed wirelength quality: a clock tree's total wire is
//! compared against the RMST of its sinks (trees pay extra for balancing,
//! so ratios of 1.5–3× are typical; a ratio of 20× would flag a broken
//! embedder).

use crate::Point;

/// Total length (nm) of a rectilinear minimum spanning tree over `points`,
/// computed with Prim's algorithm under the Manhattan metric.
///
/// Duplicated points contribute zero-length edges. Returns 0 for fewer than
/// two points. O(n²) time, O(n) space — fine for the benchmark sizes here
/// (thousands of points).
///
/// # Examples
///
/// ```
/// use snr_geom::{rmst_length, Point};
///
/// let pts = [Point::new(0, 0), Point::new(10, 0), Point::new(10, 5)];
/// assert_eq!(rmst_length(&pts), 15);
/// ```
pub fn rmst_length(points: &[Point]) -> i64 {
    if points.len() < 2 {
        return 0;
    }
    let n = points.len();
    // dist[i] = cheapest connection from the grown tree to point i.
    let mut dist: Vec<i64> = points.iter().map(|p| points[0].manhattan(*p)).collect();
    let mut in_tree = vec![false; n];
    in_tree[0] = true;
    let mut total = 0i64;
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = i64::MAX;
        for (i, &d) in dist.iter().enumerate() {
            if !in_tree[i] && d < best_d {
                best = i;
                best_d = d;
            }
        }
        debug_assert!(best != usize::MAX);
        in_tree[best] = true;
        total += best_d;
        for (i, d) in dist.iter_mut().enumerate() {
            if !in_tree[i] {
                let nd = points[best].manhattan(points[i]);
                if nd < *d {
                    *d = nd;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        assert_eq!(rmst_length(&[]), 0);
        assert_eq!(rmst_length(&[Point::new(3, 3)]), 0);
        assert_eq!(rmst_length(&[Point::new(0, 0), Point::new(3, 4)]), 7);
    }

    #[test]
    fn collinear_points_span() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i * 7, 0)).collect();
        assert_eq!(rmst_length(&pts), 63);
    }

    #[test]
    fn duplicates_are_free() {
        let pts = [Point::new(5, 5), Point::new(5, 5), Point::new(8, 5)];
        assert_eq!(rmst_length(&pts), 3);
    }

    #[test]
    fn square_corners() {
        let pts = [
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(0, 10),
            Point::new(10, 10),
        ];
        // Three sides of the square.
        assert_eq!(rmst_length(&pts), 30);
    }

    #[test]
    fn insensitive_to_input_order() {
        let mut pts = vec![
            Point::new(3, 9),
            Point::new(-4, 2),
            Point::new(11, -7),
            Point::new(0, 0),
            Point::new(5, 5),
        ];
        let a = rmst_length(&pts);
        pts.reverse();
        assert_eq!(rmst_length(&pts), a);
        pts.swap(0, 2);
        assert_eq!(rmst_length(&pts), a);
    }

    #[test]
    fn bounded_below_by_bbox_half_perimeter() {
        use crate::Rect;
        let pts = [
            Point::new(0, 0),
            Point::new(100, 40),
            Point::new(30, 90),
            Point::new(70, 10),
        ];
        let hp = Rect::bounding(pts).unwrap().half_perimeter();
        assert!(rmst_length(&pts) >= hp);
    }
}
