//! Axis-aligned rectangles.

use crate::Point;
use std::fmt;

/// An axis-aligned rectangle on the nanometre grid, stored as the
/// lower-left / upper-right corner pair.
///
/// Rectangles are closed regions: points on the boundary are contained.
/// Degenerate rectangles (zero width and/or height) are permitted and arise
/// naturally as bounding boxes of collinear point sets.
///
/// # Examples
///
/// ```
/// use snr_geom::{Point, Rect};
///
/// let r = Rect::new(Point::new(0, 0), Point::new(100, 50));
/// assert_eq!(r.width(), 100);
/// assert_eq!(r.height(), 50);
/// assert!(r.contains(Point::new(100, 0)));
/// assert!(!r.contains(Point::new(101, 0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners, in any order.
    ///
    /// The corners are normalized so that `lo() <= hi()` component-wise.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            lo: Point::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The degenerate rectangle covering exactly one point.
    pub fn point(p: Point) -> Self {
        Rect { lo: p, hi: p }
    }

    /// Smallest rectangle containing every point of `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::point(first);
        for p in it {
            r = r.expand_to(p);
        }
        Some(r)
    }

    /// Lower-left corner.
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Width in nanometres.
    pub fn width(&self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Height in nanometres.
    pub fn height(&self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// Half-perimeter wirelength (HPWL) of the rectangle, a standard lower
    /// bound for the length of a net connecting points inside it.
    pub fn half_perimeter(&self) -> i64 {
        self.width() + self.height()
    }

    /// Area in nm².
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Center of the rectangle, rounded towards the lower-left on odd spans.
    pub fn center(&self) -> Point {
        Point::new(
            self.lo.x + self.width() / 2,
            self.lo.y + self.height() / 2,
        )
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Whether `other` lies entirely inside or on the boundary of `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.lo) && self.contains(other.hi)
    }

    /// Intersection with `other`, or `None` when the rectangles are disjoint.
    ///
    /// Rectangles that merely touch (share a boundary point) intersect in a
    /// degenerate rectangle.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let lo = Point::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y));
        let hi = Point::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y));
        if lo.x <= hi.x && lo.y <= hi.y {
            Some(Rect { lo, hi })
        } else {
            None
        }
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Smallest rectangle containing `self` and the point `p`.
    pub fn expand_to(&self, p: Point) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(p.x), self.lo.y.min(p.y)),
            hi: Point::new(self.hi.x.max(p.x), self.hi.y.max(p.y)),
        }
    }

    /// Rectangle grown by `margin` nanometres on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would invert the rectangle.
    pub fn inflate(&self, margin: i64) -> Rect {
        let r = Rect {
            lo: Point::new(self.lo.x - margin, self.lo.y - margin),
            hi: Point::new(self.hi.x + margin, self.hi.y + margin),
        };
        assert!(
            r.lo.x <= r.hi.x && r.lo.y <= r.hi.y,
            "negative margin {margin} inverts rectangle"
        );
        r
    }

    /// Manhattan distance from `p` to the closest point of the rectangle
    /// (zero when `p` is contained).
    pub fn distance_to(&self, p: Point) -> i64 {
        let dx = (self.lo.x - p.x).max(0) + (p.x - self.hi.x).max(0);
        let dy = (self.lo.y - p.y).max(0) + (p.y - self.hi.y).max(0);
        dx + dy
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(Point::new(10, 0), Point::new(0, 10));
        assert_eq!(r.lo(), Point::new(0, 0));
        assert_eq!(r.hi(), Point::new(10, 10));
    }

    #[test]
    fn contains_boundary() {
        let r = Rect::new(Point::new(0, 0), Point::new(10, 10));
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(10, 10)));
        assert!(r.contains(Point::new(5, 10)));
        assert!(!r.contains(Point::new(11, 5)));
        assert!(!r.contains(Point::new(5, -1)));
    }

    #[test]
    fn intersect_overlapping() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(5, 5), Point::new(20, 20));
        let i = a.intersect(&b).expect("overlap");
        assert_eq!(i, Rect::new(Point::new(5, 5), Point::new(10, 10)));
    }

    #[test]
    fn intersect_touching_is_degenerate() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(10, 0), Point::new(20, 10));
        let i = a.intersect(&b).expect("touching rectangles intersect");
        assert_eq!(i.width(), 0);
        assert_eq!(i.height(), 10);
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(11, 11), Point::new(20, 20));
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(Point::new(0, 0), Point::new(1, 1));
        let b = Rect::new(Point::new(5, 5), Point::new(6, 6));
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(Point::new(0, 0), Point::new(6, 6)));
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = [Point::new(3, 7), Point::new(-1, 2), Point::new(5, 5)];
        let r = Rect::bounding(pts).expect("non-empty");
        assert_eq!(r, Rect::new(Point::new(-1, 2), Point::new(5, 7)));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn distance_to_point() {
        let r = Rect::new(Point::new(0, 0), Point::new(10, 10));
        assert_eq!(r.distance_to(Point::new(5, 5)), 0);
        assert_eq!(r.distance_to(Point::new(13, 5)), 3);
        assert_eq!(r.distance_to(Point::new(13, 14)), 7);
        assert_eq!(r.distance_to(Point::new(-2, -2)), 4);
    }

    #[test]
    fn half_perimeter_and_area() {
        let r = Rect::new(Point::new(0, 0), Point::new(3, 4));
        assert_eq!(r.half_perimeter(), 7);
        assert_eq!(r.area(), 12);
    }

    #[test]
    fn inflate_grows_every_side() {
        let r = Rect::new(Point::new(0, 0), Point::new(10, 10)).inflate(5);
        assert_eq!(r, Rect::new(Point::new(-5, -5), Point::new(15, 15)));
    }

    #[test]
    #[should_panic(expected = "inverts rectangle")]
    fn inflate_negative_past_zero_panics() {
        let _ = Rect::new(Point::new(0, 0), Point::new(4, 4)).inflate(-3);
    }

    #[test]
    fn center_of_even_and_odd_spans() {
        assert_eq!(
            Rect::new(Point::new(0, 0), Point::new(10, 10)).center(),
            Point::new(5, 5)
        );
        assert_eq!(
            Rect::new(Point::new(0, 0), Point::new(5, 5)).center(),
            Point::new(2, 2)
        );
    }
}
