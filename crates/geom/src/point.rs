//! Integer and floating-point points on the Manhattan plane.

use std::fmt;
use std::ops::{Add, Sub};

/// A location on the design's nanometre grid.
///
/// All database coordinates in `smart-ndr` (sink pins, buffer locations,
/// Steiner points) are integer nanometres, matching the convention of layout
/// databases such as LEF/DEF, which keeps geometry exact and hashable.
///
/// # Examples
///
/// ```
/// use snr_geom::Point;
///
/// let p = Point::new(1_000, 2_000);
/// let q = Point::new(4_000, 6_000);
/// assert_eq!(p.manhattan(q), 7_000);
/// assert_eq!(p + q, Point::new(5_000, 8_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// X coordinate in nanometres.
    pub x: i64,
    /// Y coordinate in nanometres.
    pub y: i64,
}

impl Point {
    /// Creates a point at `(x, y)` nanometres.
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Manhattan (L1) distance to `other`, in nanometres.
    ///
    /// This is the routed wirelength of a shortest rectilinear connection
    /// between the two points.
    ///
    /// ```
    /// use snr_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan(Point::new(-3, 4)), 7);
    /// ```
    pub fn manhattan(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L∞) distance to `other`.
    ///
    /// In the 45°-rotated coordinate system used by DME, Manhattan distance
    /// becomes Chebyshev distance; this helper exists mainly for tests of
    /// that correspondence.
    pub fn chebyshev(self, other: Point) -> i64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Rotated coordinate `u = x + y`.
    ///
    /// Together with [`Point::v`], this maps ±1-slope (tilted) lines to
    /// axis-parallel lines, which is how [`crate::Trr`] represents tilted
    /// rectangular regions.
    pub fn u(self) -> i64 {
        self.x + self.y
    }

    /// Rotated coordinate `v = x - y`. See [`Point::u`].
    pub fn v(self) -> i64 {
        self.x - self.y
    }

    /// Converts to a floating-point point, e.g. for DME balancing.
    pub fn to_f64(self) -> PointF {
        PointF {
            x: self.x as f64,
            y: self.y as f64,
        }
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

/// A floating-point point, used internally by the DME embedding where exact
/// midpoints of odd-length segments are required.
///
/// `PointF` carries the same nanometre units as [`Point`]; use
/// [`PointF::snap`] to return to the integer grid.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PointF {
    /// X coordinate in (fractional) nanometres.
    pub x: f64,
    /// Y coordinate in (fractional) nanometres.
    pub y: f64,
}

impl PointF {
    /// Creates a floating-point point.
    pub const fn new(x: f64, y: f64) -> Self {
        PointF { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan(self, other: PointF) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Rotated coordinate `u = x + y`.
    pub fn u(self) -> f64 {
        self.x + self.y
    }

    /// Rotated coordinate `v = x - y`.
    pub fn v(self) -> f64 {
        self.x - self.y
    }

    /// Reconstructs a point from rotated coordinates `(u, v)`.
    ///
    /// Inverse of the `(u, v) = (x + y, x - y)` transform.
    pub fn from_uv(u: f64, v: f64) -> Self {
        PointF::new((u + v) / 2.0, (u - v) / 2.0)
    }

    /// Rounds to the nearest integer-nanometre [`Point`].
    pub fn snap(self) -> Point {
        Point::new(self.x.round() as i64, self.y.round() as i64)
    }
}

impl From<Point> for PointF {
    fn from(p: Point) -> Self {
        p.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_basic() {
        assert_eq!(Point::new(0, 0).manhattan(Point::new(3, 4)), 7);
        assert_eq!(Point::new(-2, -3).manhattan(Point::new(2, 3)), 10);
        assert_eq!(Point::new(5, 5).manhattan(Point::new(5, 5)), 0);
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = Point::new(17, -4);
        let b = Point::new(-9, 123);
        assert_eq!(a.manhattan(b), b.manhattan(a));
    }

    #[test]
    fn rotated_coords_roundtrip() {
        let p = Point::new(12, 35);
        let f = PointF::from_uv(p.u() as f64, p.v() as f64);
        assert_eq!(f.snap(), p);
    }

    #[test]
    fn manhattan_equals_chebyshev_in_rotated_space() {
        let a = Point::new(3, 7);
        let b = Point::new(-5, 2);
        let du = (a.u() - b.u()).abs();
        let dv = (a.v() - b.v()).abs();
        assert_eq!(a.manhattan(b), du.max(dv));
    }

    #[test]
    fn point_arithmetic() {
        let a = Point::new(1, 2);
        let b = Point::new(10, 20);
        assert_eq!(a + b, Point::new(11, 22));
        assert_eq!(b - a, Point::new(9, 18));
    }

    #[test]
    fn pointf_snap_rounds_to_nearest() {
        assert_eq!(PointF::new(1.4, 2.6).snap(), Point::new(1, 3));
        assert_eq!(PointF::new(-1.5, 0.0).snap(), Point::new(-2, 0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(3, -4).to_string(), "(3, -4)");
    }

    #[test]
    fn from_tuple() {
        let p: Point = (7, 8).into();
        assert_eq!(p, Point::new(7, 8));
    }
}
