//! Axis-parallel wire segments and rectilinear routing helpers.

use crate::Point;
use std::fmt;

/// An axis-parallel wire segment between two points.
///
/// Routed clock wires are decomposed into horizontal and vertical segments;
/// every edge of the clock tree is realized as at most two such segments
/// (an L-shape). Degenerate (zero-length) segments are allowed.
///
/// # Examples
///
/// ```
/// use snr_geom::{Point, Segment};
///
/// let s = Segment::new(Point::new(0, 0), Point::new(0, 500)).unwrap();
/// assert_eq!(s.length(), 500);
/// assert!(s.is_vertical());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    a: Point,
    b: Point,
}

impl Segment {
    /// Creates an axis-parallel segment from `a` to `b`.
    ///
    /// Returns `None` if the two points differ in both coordinates (the
    /// segment would be diagonal — use [`lshape_via`] to route such pairs).
    pub fn new(a: Point, b: Point) -> Option<Self> {
        if a.x == b.x || a.y == b.y {
            Some(Segment { a, b })
        } else {
            None
        }
    }

    /// Start point.
    pub fn a(&self) -> Point {
        self.a
    }

    /// End point.
    pub fn b(&self) -> Point {
        self.b
    }

    /// Length in nanometres.
    pub fn length(&self) -> i64 {
        self.a.manhattan(self.b)
    }

    /// Whether the segment runs vertically (constant x).
    ///
    /// Zero-length segments report as vertical *and* horizontal.
    pub fn is_vertical(&self) -> bool {
        self.a.x == self.b.x
    }

    /// Whether the segment runs horizontally (constant y).
    pub fn is_horizontal(&self) -> bool {
        self.a.y == self.b.y
    }

    /// Midpoint, rounded towards `a` on odd lengths.
    pub fn midpoint(&self) -> Point {
        Point::new(
            self.a.x + (self.b.x - self.a.x) / 2,
            self.a.y + (self.b.y - self.a.y) / 2,
        )
    }

    /// The point at distance `d` from `a` along the segment.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative or exceeds the segment length.
    pub fn point_at(&self, d: i64) -> Point {
        let len = self.length();
        assert!(
            (0..=len).contains(&d),
            "distance {d} outside segment of length {len}"
        );
        if len == 0 {
            return self.a;
        }
        let t = |lo: i64, hi: i64| lo + (hi - lo) * d / len;
        Point::new(t(self.a.x, self.b.x), t(self.a.y, self.b.y))
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.a, self.b)
    }
}

/// The corner point of the lower-L route from `from` to `to`.
///
/// A two-pin connection is routed as a vertical-then-horizontal or
/// horizontal-then-vertical L; this helper returns the corner of the
/// horizontal-first shape, `(to.x, from.y)`. For points sharing a row or
/// column, the corner degenerates onto the line and one segment is empty.
pub fn lshape_via(from: Point, to: Point) -> Point {
    Point::new(to.x, from.y)
}

/// Total routed length of the rectilinear path visiting `points` in order.
///
/// Each consecutive pair is assumed routed with a shortest (L-shaped)
/// connection, so the result is the sum of Manhattan distances.
pub fn route_length<I: IntoIterator<Item = Point>>(points: I) -> i64 {
    let mut it = points.into_iter();
    let Some(mut prev) = it.next() else {
        return 0;
    };
    let mut total = 0;
    for p in it {
        total += prev.manhattan(p);
        prev = p;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_diagonal() {
        assert!(Segment::new(Point::new(0, 0), Point::new(1, 1)).is_none());
        assert!(Segment::new(Point::new(0, 0), Point::new(0, 5)).is_some());
        assert!(Segment::new(Point::new(0, 0), Point::new(5, 0)).is_some());
    }

    #[test]
    fn zero_length_is_both_orientations() {
        let s = Segment::new(Point::new(3, 3), Point::new(3, 3)).unwrap();
        assert!(s.is_vertical() && s.is_horizontal());
        assert_eq!(s.length(), 0);
    }

    #[test]
    fn length_and_midpoint() {
        let s = Segment::new(Point::new(0, 0), Point::new(10, 0)).unwrap();
        assert_eq!(s.length(), 10);
        assert_eq!(s.midpoint(), Point::new(5, 0));
        let odd = Segment::new(Point::new(0, 0), Point::new(0, 7)).unwrap();
        assert_eq!(odd.midpoint(), Point::new(0, 3));
    }

    #[test]
    fn point_at_interpolates() {
        let s = Segment::new(Point::new(10, 5), Point::new(0, 5)).unwrap();
        assert_eq!(s.point_at(0), Point::new(10, 5));
        assert_eq!(s.point_at(10), Point::new(0, 5));
        assert_eq!(s.point_at(4), Point::new(6, 5));
    }

    #[test]
    #[should_panic(expected = "outside segment")]
    fn point_at_out_of_range_panics() {
        let s = Segment::new(Point::new(0, 0), Point::new(0, 5)).unwrap();
        let _ = s.point_at(6);
    }

    #[test]
    fn lshape_route_covers_manhattan_distance() {
        let from = Point::new(0, 0);
        let to = Point::new(30, 40);
        let via = lshape_via(from, to);
        assert_eq!(
            from.manhattan(via) + via.manhattan(to),
            from.manhattan(to)
        );
        // Both legs are axis-parallel.
        assert!(Segment::new(from, via).is_some());
        assert!(Segment::new(via, to).is_some());
    }

    #[test]
    fn route_length_sums_pairs() {
        let pts = [Point::new(0, 0), Point::new(3, 4), Point::new(3, 10)];
        assert_eq!(route_length(pts), 7 + 6);
        assert_eq!(route_length(std::iter::empty()), 0);
        assert_eq!(route_length([Point::new(5, 5)]), 0);
    }
}
