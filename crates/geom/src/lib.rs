//! Manhattan geometry substrate for clock-tree construction and routing.
//!
//! This crate provides the geometric primitives used throughout `smart-ndr`:
//!
//! * [`Point`] — integer (nanometre-grid) locations of sinks, buffers and
//!   Steiner points.
//! * [`Rect`] — axis-aligned rectangles (die area, blockages, bounding boxes).
//! * [`Segment`] — axis-parallel wire segments with Manhattan routing helpers.
//! * [`Trr`] and [`DiagSegment`] — tilted rectangular regions and ±1-slope
//!   segments in *rotated* coordinates, the workhorses of the Deferred-Merge
//!   Embedding (DME) algorithm used by the clock-tree synthesizer.
//!
//! Distances between database points are in integer nanometres; the DME
//! machinery works in `f64` rotated coordinates for exact balancing and snaps
//! back to the nanometre grid when a tree is embedded.
//!
//! # Examples
//!
//! ```
//! use snr_geom::{Point, Rect};
//!
//! let a = Point::new(0, 0);
//! let b = Point::new(3_000, 4_000);
//! assert_eq!(a.manhattan(b), 7_000);
//!
//! let die = Rect::new(Point::new(0, 0), Point::new(10_000, 10_000));
//! assert!(die.contains(b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod point;
mod rect;
mod rmst;
mod segment;
mod trr;

pub use point::{Point, PointF};
pub use rect::Rect;
pub use rmst::rmst_length;
pub use segment::{lshape_via, route_length, Segment};
pub use trr::{DiagSegment, Trr};
