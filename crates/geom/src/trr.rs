//! Tilted rectangular regions (TRRs) for Deferred-Merge Embedding.
//!
//! DME represents the locus of equidistant merge locations as *tilted*
//! rectangles — rectangles rotated 45° with respect to the routing axes.
//! Under the rotation `(u, v) = (x + y, x − y)` these become ordinary
//! axis-aligned rectangles, and the Manhattan metric becomes the Chebyshev
//! metric, in which expansion by a radius and region intersection are a few
//! min/max operations. This module implements exactly that machinery.

use crate::PointF;
use std::fmt;

/// A tilted rectangular region, stored as an axis-aligned box in the
/// rotated `(u, v) = (x + y, x − y)` coordinate system.
///
/// A `Trr` can be a point, a ±1-slope segment (degenerate in `u` or `v`) or
/// a full region. All DME operations — expanding by a wire radius,
/// intersecting two regions, measuring the Manhattan distance between
/// regions — close over this representation.
///
/// # Examples
///
/// ```
/// use snr_geom::{PointF, Trr};
///
/// let a = Trr::point(PointF::new(0.0, 0.0));
/// let b = Trr::point(PointF::new(6.0, 2.0));
/// assert_eq!(a.distance(&b), 8.0); // Manhattan distance
///
/// // Expanding each by half the distance makes them touch:
/// let m = a.expand(4.0).intersect(&b.expand(4.0)).unwrap();
/// assert!(m.is_segment());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trr {
    ulo: f64,
    uhi: f64,
    vlo: f64,
    vhi: f64,
}

impl Trr {
    /// Creates a region from rotated-coordinate bounds.
    ///
    /// Returns `None` if the bounds are inverted or non-finite.
    pub fn from_uv_bounds(ulo: f64, uhi: f64, vlo: f64, vhi: f64) -> Option<Self> {
        let ok = ulo.is_finite()
            && uhi.is_finite()
            && vlo.is_finite()
            && vhi.is_finite()
            && ulo <= uhi
            && vlo <= vhi;
        ok.then_some(Trr { ulo, uhi, vlo, vhi })
    }

    /// The degenerate region containing exactly one point.
    pub fn point(p: PointF) -> Self {
        Trr {
            ulo: p.u(),
            uhi: p.u(),
            vlo: p.v(),
            vhi: p.v(),
        }
    }

    /// Lower `u` bound (rotated coordinates).
    pub fn ulo(&self) -> f64 {
        self.ulo
    }
    /// Upper `u` bound (rotated coordinates).
    pub fn uhi(&self) -> f64 {
        self.uhi
    }
    /// Lower `v` bound (rotated coordinates).
    pub fn vlo(&self) -> f64 {
        self.vlo
    }
    /// Upper `v` bound (rotated coordinates).
    pub fn vhi(&self) -> f64 {
        self.vhi
    }

    /// Whether the region is a single point (up to `eps`).
    pub fn is_point(&self) -> bool {
        const EPS: f64 = 1e-9;
        (self.uhi - self.ulo) <= EPS && (self.vhi - self.vlo) <= EPS
    }

    /// Whether the region is degenerate in at least one rotated axis, i.e.
    /// a ±1-slope segment (or a point) in design coordinates.
    pub fn is_segment(&self) -> bool {
        const EPS: f64 = 1e-9;
        (self.uhi - self.ulo) <= EPS || (self.vhi - self.vlo) <= EPS
    }

    /// The region expanded by Manhattan radius `r ≥ 0`.
    ///
    /// In rotated coordinates a Manhattan ball is a Chebyshev ball, so the
    /// expansion grows every bound by `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is negative or not finite.
    pub fn expand(&self, r: f64) -> Trr {
        assert!(r.is_finite() && r >= 0.0, "invalid expansion radius {r}");
        Trr {
            ulo: self.ulo - r,
            uhi: self.uhi + r,
            vlo: self.vlo - r,
            vhi: self.vhi + r,
        }
    }

    /// Intersection with `other`, or `None` when disjoint.
    ///
    /// DME intersects regions expanded by radii that sum *exactly* to their
    /// distance, so floating-point rounding can invert a bound by a few ULPs.
    /// Inversions up to a relative tolerance are collapsed to the midpoint
    /// instead of reported as disjoint.
    pub fn intersect(&self, other: &Trr) -> Option<Trr> {
        let scale = 1.0
            + self.ulo.abs().max(self.uhi.abs()).max(self.vlo.abs()).max(self.vhi.abs())
            + other.ulo.abs().max(other.uhi.abs()).max(other.vlo.abs()).max(other.vhi.abs());
        let tol = 1e-12 * scale;
        let clip = |lo: f64, hi: f64| -> Option<(f64, f64)> {
            if lo <= hi {
                Some((lo, hi))
            } else if lo - hi <= tol {
                let mid = (lo + hi) / 2.0;
                Some((mid, mid))
            } else {
                None
            }
        };
        let (ulo, uhi) = clip(self.ulo.max(other.ulo), self.uhi.min(other.uhi))?;
        let (vlo, vhi) = clip(self.vlo.max(other.vlo), self.vhi.min(other.vhi))?;
        Trr::from_uv_bounds(ulo, uhi, vlo, vhi)
    }

    /// Minimum Manhattan distance between the two regions
    /// (zero when they overlap).
    ///
    /// Because the Manhattan metric is the Chebyshev metric in rotated
    /// coordinates, this is the larger of the per-axis gaps.
    pub fn distance(&self, other: &Trr) -> f64 {
        let gap = |alo: f64, ahi: f64, blo: f64, bhi: f64| (blo - ahi).max(alo - bhi).max(0.0);
        let du = gap(self.ulo, self.uhi, other.ulo, other.uhi);
        let dv = gap(self.vlo, self.vhi, other.vlo, other.vhi);
        du.max(dv)
    }

    /// The point of the region closest (Manhattan) to `p`.
    ///
    /// Used during top-down DME embedding: the child's location is the point
    /// of its merging region nearest the already-placed parent.
    pub fn closest_to(&self, p: PointF) -> PointF {
        let u = p.u().clamp(self.ulo, self.uhi);
        let v = p.v().clamp(self.vlo, self.vhi);
        PointF::from_uv(u, v)
    }

    /// An arbitrary representative point (the region center).
    pub fn center(&self) -> PointF {
        PointF::from_uv((self.ulo + self.uhi) / 2.0, (self.vlo + self.vhi) / 2.0)
    }

    /// Manhattan distance from the region to a point.
    pub fn distance_to_point(&self, p: PointF) -> f64 {
        self.distance(&Trr::point(p))
    }
}

impl fmt::Display for Trr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trr{{u: [{:.1}, {:.1}], v: [{:.1}, {:.1}]}}",
            self.ulo, self.uhi, self.vlo, self.vhi
        )
    }
}

/// A ±1-slope segment in design coordinates — the classic DME
/// "merging segment".
///
/// This is a convenience view over a degenerate [`Trr`]: it keeps explicit
/// endpoints, which is useful for reporting and tests, while all geometric
/// computation happens on the underlying region.
///
/// # Examples
///
/// ```
/// use snr_geom::{DiagSegment, PointF};
///
/// let s = DiagSegment::new(PointF::new(0.0, 0.0), PointF::new(3.0, 3.0)).unwrap();
/// assert_eq!(s.length(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagSegment {
    a: PointF,
    b: PointF,
}

impl DiagSegment {
    /// Creates a diagonal segment.
    ///
    /// Returns `None` unless the segment has slope +1, slope −1, or is a
    /// single point (tolerance 1e-6 nm).
    pub fn new(a: PointF, b: PointF) -> Option<Self> {
        const EPS: f64 = 1e-6;
        let du = (a.u() - b.u()).abs();
        let dv = (a.v() - b.v()).abs();
        (du <= EPS || dv <= EPS).then_some(DiagSegment { a, b })
    }

    /// First endpoint.
    pub fn a(&self) -> PointF {
        self.a
    }

    /// Second endpoint.
    pub fn b(&self) -> PointF {
        self.b
    }

    /// Manhattan length of the segment.
    pub fn length(&self) -> f64 {
        self.a.manhattan(self.b)
    }

    /// The segment as a (degenerate) tilted region.
    pub fn to_trr(&self) -> Trr {
        Trr::from_uv_bounds(
            self.a.u().min(self.b.u()),
            self.a.u().max(self.b.u()),
            self.a.v().min(self.b.v()),
            self.a.v().max(self.b.v()),
        )
        .expect("endpoints are finite")
    }
}

impl From<DiagSegment> for Trr {
    fn from(s: DiagSegment) -> Trr {
        s.to_trr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn pf(x: f64, y: f64) -> PointF {
        PointF::new(x, y)
    }

    #[test]
    fn point_region_distance_is_manhattan() {
        let a = Trr::point(pf(0.0, 0.0));
        let b = Trr::point(pf(3.0, 4.0));
        assert_eq!(a.distance(&b), 7.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn expansion_radius_matches_manhattan_ball() {
        // Every integer point at Manhattan distance <= r must fall inside
        // the expanded region; points farther away must fall outside.
        let c = Point::new(10, 10);
        let region = Trr::point(c.to_f64()).expand(5.0);
        for dx in -8i64..=8 {
            for dy in -8i64..=8 {
                let p = Point::new(c.x + dx, c.y + dy);
                let inside = region.distance_to_point(p.to_f64()) <= 1e-9;
                assert_eq!(inside, c.manhattan(p) <= 5, "point {p}");
            }
        }
    }

    #[test]
    fn exact_radius_intersection_is_segment() {
        let a = Trr::point(pf(0.0, 0.0));
        let b = Trr::point(pf(10.0, 4.0));
        let d = a.distance(&b);
        let m = a.expand(d / 2.0).intersect(&b.expand(d / 2.0)).unwrap();
        assert!(m.is_segment());
        // Every point of the merging segment is equidistant from both cores.
        let c = m.center();
        assert!((a.distance_to_point(c) - d / 2.0).abs() < 1e-9);
        assert!((b.distance_to_point(c) - d / 2.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_radii_balance_distances() {
        let a = Trr::point(pf(0.0, 0.0));
        let b = Trr::point(pf(8.0, 0.0));
        let (ea, eb) = (6.0, 2.0);
        let m = a.expand(ea).intersect(&b.expand(eb)).unwrap();
        let c = m.center();
        assert!(a.distance_to_point(c) <= ea + 1e-9);
        assert!(b.distance_to_point(c) <= eb + 1e-9);
    }

    #[test]
    fn disjoint_regions_do_not_intersect() {
        let a = Trr::point(pf(0.0, 0.0)).expand(1.0);
        let b = Trr::point(pf(10.0, 0.0)).expand(1.0);
        assert!(a.intersect(&b).is_none());
        assert_eq!(a.distance(&b), 8.0);
    }

    #[test]
    fn closest_point_clamps_into_region() {
        let r = Trr::point(pf(0.0, 0.0)).expand(2.0);
        let inside = pf(0.5, 0.5);
        let got = r.closest_to(inside);
        assert!((got.x - inside.x).abs() < 1e-9 && (got.y - inside.y).abs() < 1e-9);

        let outside = pf(10.0, 0.0);
        let nearest = r.closest_to(outside);
        assert!(r.distance_to_point(nearest) < 1e-9);
        assert!((nearest.manhattan(outside) - r.distance_to_point(outside)).abs() < 1e-9);
    }

    #[test]
    fn diag_segment_validation() {
        assert!(DiagSegment::new(pf(0.0, 0.0), pf(3.0, 3.0)).is_some()); // slope +1
        assert!(DiagSegment::new(pf(0.0, 0.0), pf(3.0, -3.0)).is_some()); // slope -1
        assert!(DiagSegment::new(pf(0.0, 0.0), pf(0.0, 0.0)).is_some()); // point
        assert!(DiagSegment::new(pf(0.0, 0.0), pf(3.0, 1.0)).is_none()); // other
    }

    #[test]
    fn diag_segment_roundtrips_to_trr() {
        let s = DiagSegment::new(pf(0.0, 0.0), pf(4.0, 4.0)).unwrap();
        let t = s.to_trr();
        assert!(t.is_segment());
        assert!(t.distance_to_point(pf(2.0, 2.0)) < 1e-9);
        assert!(t.distance_to_point(pf(2.0, 0.0)) > 1.0);
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(Trr::from_uv_bounds(1.0, 0.0, 0.0, 0.0).is_none());
        assert!(Trr::from_uv_bounds(f64::NAN, 0.0, 0.0, 0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid expansion radius")]
    fn negative_expansion_panics() {
        let _ = Trr::point(pf(0.0, 0.0)).expand(-1.0);
    }

    #[test]
    fn distance_between_expanded_regions_shrinks_by_radii() {
        let a = Trr::point(pf(0.0, 0.0));
        let b = Trr::point(pf(20.0, 0.0));
        assert_eq!(a.expand(3.0).distance(&b.expand(4.0)), 13.0);
    }
}
