//! Clock-network power model.
//!
//! Clock power is dominated by switched capacitance: the clock toggles every
//! cycle, so every femtofarad of wire, buffer-input and sink-pin capacitance
//! is paid at full activity. This crate evaluates, for a
//! [`snr_cts::ClockTree`] under a rule [`snr_cts::Assignment`]:
//!
//! * **wire switching power** — the component smart NDR reduces,
//! * **buffer power** — input-pin switching plus internal (short-circuit +
//!   self-load) energy,
//! * **sink switching power** — constant across assignments, reported for
//!   honest totals,
//! * **leakage**, and
//! * **routing-track cost** — the resource price of wide/spaced rules.
//!
//! # Examples
//!
//! ```
//! use snr_netlist::BenchmarkSpec;
//! use snr_tech::Technology;
//! use snr_cts::{synthesize, Assignment, CtsOptions};
//! use snr_power::{evaluate, PowerModel};
//!
//! let design = BenchmarkSpec::new("demo", 64).seed(3).build()?;
//! let tech = Technology::n45();
//! let tree = synthesize(&design, &tech, &CtsOptions::default())?;
//! let model = PowerModel::new(design.freq_ghz());
//!
//! let ndr = evaluate(&tree, &tech, &Assignment::uniform(&tree, tech.rules().most_conservative_id()), &model);
//! let def = evaluate(&tree, &tech, &Assignment::uniform(&tree, tech.rules().default_id()), &model);
//! assert!(ndr.wire_uw() > def.wire_uw()); // 2W2S carries more capacitance
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use snr_cts::{Assignment, ClockTree, NodeKind};
use snr_tech::{units, Technology};
use std::fmt;

/// Operating point for power evaluation.
///
/// # Examples
///
/// ```
/// let m = snr_power::PowerModel::new(2.0).with_activity(0.8);
/// assert_eq!(m.freq_ghz(), 2.0);
/// assert_eq!(m.activity(), 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    freq_ghz: f64,
    activity: f64,
}

impl PowerModel {
    /// Creates a model at `freq_ghz` with full clock activity (α = 1).
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive and finite.
    pub fn new(freq_ghz: f64) -> Self {
        assert!(
            freq_ghz.is_finite() && freq_ghz > 0.0,
            "frequency {freq_ghz} GHz must be positive"
        );
        PowerModel {
            freq_ghz,
            activity: 1.0,
        }
    }

    /// Returns a copy with a different activity factor (clock gating).
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn with_activity(mut self, activity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity {activity} outside [0, 1]"
        );
        self.activity = activity;
        self
    }

    /// Clock frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Activity factor.
    pub fn activity(&self) -> f64 {
        self.activity
    }
}

/// Power breakdown of a clock tree under one rule assignment.
///
/// All powers in µW, capacitances in fF, track cost in equivalent
/// default-rule µm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    wire_cap_ff: f64,
    buffer_input_cap_ff: f64,
    sink_cap_ff: f64,
    wire_uw: f64,
    buffer_input_uw: f64,
    buffer_internal_uw: f64,
    sink_uw: f64,
    leakage_uw: f64,
    track_cost_um: f64,
}

impl PowerReport {
    /// Total switched wire capacitance in fF.
    pub fn wire_cap_ff(&self) -> f64 {
        self.wire_cap_ff
    }

    /// Total buffer input capacitance in fF.
    pub fn buffer_input_cap_ff(&self) -> f64 {
        self.buffer_input_cap_ff
    }

    /// Total sink pin capacitance in fF.
    pub fn sink_cap_ff(&self) -> f64 {
        self.sink_cap_ff
    }

    /// Wire switching power in µW — the component NDR choices change.
    pub fn wire_uw(&self) -> f64 {
        self.wire_uw
    }

    /// Buffer input-pin switching power in µW.
    pub fn buffer_input_uw(&self) -> f64 {
        self.buffer_input_uw
    }

    /// Buffer internal power in µW.
    pub fn buffer_internal_uw(&self) -> f64 {
        self.buffer_internal_uw
    }

    /// Sink pin switching power in µW.
    pub fn sink_uw(&self) -> f64 {
        self.sink_uw
    }

    /// Total leakage in µW.
    pub fn leakage_uw(&self) -> f64 {
        self.leakage_uw
    }

    /// Routing-track cost: wirelength weighted by each rule's track cost,
    /// in equivalent default-rule µm.
    pub fn track_cost_um(&self) -> f64 {
        self.track_cost_um
    }

    /// Total clock power in µW.
    pub fn total_uw(&self) -> f64 {
        self.wire_uw + self.buffer_input_uw + self.buffer_internal_uw + self.sink_uw
            + self.leakage_uw
    }

    /// Total minus the sink component — the part the clock network itself
    /// costs, the paper's figure of merit.
    pub fn network_uw(&self) -> f64 {
        self.total_uw() - self.sink_uw
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.1} µW (wire {:.1}, buf-in {:.1}, buf-int {:.1}, sinks {:.1}, leak {:.2}), tracks {:.0} µm",
            self.total_uw(),
            self.wire_uw,
            self.buffer_input_uw,
            self.buffer_internal_uw,
            self.sink_uw,
            self.leakage_uw,
            self.track_cost_um
        )
    }
}

/// Evaluates the power of `tree` under `assignment` at the operating point
/// `model`.
///
/// # Panics
///
/// Panics if the assignment does not match the tree, or references rules
/// outside the technology's rule set.
pub fn evaluate(
    tree: &ClockTree,
    tech: &Technology,
    assignment: &Assignment,
    model: &PowerModel,
) -> PowerReport {
    assert_eq!(
        assignment.len(),
        tree.len(),
        "assignment built for a different tree"
    );
    let layer = tech.clock_layer();
    let rules = tech.rules();
    let cells = tech.buffers().cells();

    let mut wire_cap_ff = 0.0;
    let mut track_cost_um = 0.0;
    for (e, rid) in assignment.iter_edges(tree) {
        let rule = rules
            .get(rid)
            .expect("assignment references a rule outside the technology rule set");
        let len_um = tree.node(e).edge_len_nm() as f64 / 1_000.0;
        wire_cap_ff += layer.unit_c(rule) * len_um;
        track_cost_um += rule.track_cost() * len_um;
    }

    let mut buffer_input_cap_ff = 0.0;
    let mut buffer_internal_uw = 0.0;
    let mut leakage_uw = 0.0;
    let mut sink_cap_ff = 0.0;
    for node in tree.nodes() {
        match node.kind() {
            NodeKind::Buffer { cell } => {
                let c = &cells[cell];
                // The root driver's input is charged by the clock source,
                // not by the tree; skip its pin cap.
                if node.parent().is_some() {
                    buffer_input_cap_ff += c.input_cap_ff();
                }
                buffer_internal_uw += c.internal_energy_fj() * model.freq_ghz * model.activity;
                leakage_uw += c.leakage_uw();
            }
            NodeKind::Sink { cap_ff, .. } => sink_cap_ff += cap_ff,
            NodeKind::Steiner => {}
        }
    }

    let vdd = tech.vdd_v();
    let p = |cap_ff: f64| units::switching_power_uw(cap_ff, vdd, model.freq_ghz, model.activity);
    PowerReport {
        wire_cap_ff,
        buffer_input_cap_ff,
        sink_cap_ff,
        wire_uw: p(wire_cap_ff),
        buffer_input_uw: p(buffer_input_cap_ff),
        buffer_internal_uw,
        sink_uw: p(sink_cap_ff),
        leakage_uw,
        track_cost_um,
    }
}

/// Evaluates the power of `tree` under `assignment` at a process corner:
/// wire capacitance scales by the corner's C factor and the supply by its
/// VDD factor (buffer internals stay nominal — interconnect-only corner
/// model).
///
/// # Panics
///
/// Panics under the same conditions as [`evaluate`].
pub fn evaluate_at_corner(
    tree: &ClockTree,
    tech: &Technology,
    assignment: &Assignment,
    model: &PowerModel,
    corner: snr_tech::Corner,
) -> PowerReport {
    let nominal = evaluate(tree, tech, assignment, model);
    let v2 = corner.vdd_scale() * corner.vdd_scale();
    let p = |cap_ff: f64| {
        units::switching_power_uw(
            cap_ff,
            tech.vdd_v() * corner.vdd_scale(),
            model.freq_ghz(),
            model.activity(),
        )
    };
    PowerReport {
        wire_cap_ff: nominal.wire_cap_ff * corner.c_scale(),
        wire_uw: p(nominal.wire_cap_ff * corner.c_scale()),
        buffer_input_uw: nominal.buffer_input_uw * v2,
        sink_uw: nominal.sink_uw * v2,
        ..nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snr_cts::{synthesize, CtsOptions};
    use snr_netlist::BenchmarkSpec;

    fn setup(n: usize) -> (ClockTree, Technology) {
        let design = BenchmarkSpec::new("t", n).seed(6).build().unwrap();
        let tech = Technology::n45();
        let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();
        (tree, tech)
    }

    #[test]
    fn conservative_rule_costs_more_wire_power() {
        let (tree, tech) = setup(150);
        let m = PowerModel::new(1.0);
        let hi = evaluate(
            &tree,
            &tech,
            &Assignment::uniform(&tree, tech.rules().most_conservative_id()),
            &m,
        );
        let lo = evaluate(
            &tree,
            &tech,
            &Assignment::uniform(&tree, tech.rules().default_id()),
            &m,
        );
        assert!(hi.wire_uw() > lo.wire_uw());
        assert!(hi.track_cost_um() > lo.track_cost_um());
        // Non-wire components identical: same tree, same buffers.
        assert_eq!(hi.buffer_input_uw(), lo.buffer_input_uw());
        assert_eq!(hi.sink_uw(), lo.sink_uw());
        assert_eq!(hi.leakage_uw(), lo.leakage_uw());
    }

    #[test]
    fn total_is_sum_of_components() {
        let (tree, tech) = setup(100);
        let m = PowerModel::new(1.5);
        let r = evaluate(
            &tree,
            &tech,
            &Assignment::uniform(&tree, tech.rules().default_id()),
            &m,
        );
        let sum = r.wire_uw()
            + r.buffer_input_uw()
            + r.buffer_internal_uw()
            + r.sink_uw()
            + r.leakage_uw();
        assert!((r.total_uw() - sum).abs() < 1e-9);
        assert!((r.network_uw() - (sum - r.sink_uw())).abs() < 1e-9);
    }

    #[test]
    fn power_linear_in_frequency_except_leakage() {
        let (tree, tech) = setup(80);
        let asg = Assignment::uniform(&tree, tech.rules().default_id());
        let r1 = evaluate(&tree, &tech, &asg, &PowerModel::new(1.0));
        let r2 = evaluate(&tree, &tech, &asg, &PowerModel::new(2.0));
        assert!((r2.wire_uw() - 2.0 * r1.wire_uw()).abs() < 1e-9);
        assert!((r2.buffer_internal_uw() - 2.0 * r1.buffer_internal_uw()).abs() < 1e-9);
        assert_eq!(r2.leakage_uw(), r1.leakage_uw());
    }

    #[test]
    fn gating_scales_dynamic_power() {
        let (tree, tech) = setup(80);
        let asg = Assignment::uniform(&tree, tech.rules().default_id());
        let full = evaluate(&tree, &tech, &asg, &PowerModel::new(1.0));
        let half = evaluate(&tree, &tech, &asg, &PowerModel::new(1.0).with_activity(0.5));
        assert!((half.wire_uw() - full.wire_uw() / 2.0).abs() < 1e-9);
        assert_eq!(half.leakage_uw(), full.leakage_uw());
    }

    #[test]
    fn sink_cap_matches_design() {
        let design = BenchmarkSpec::new("t", 40).seed(2).build().unwrap();
        let tech = Technology::n45();
        let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();
        let asg = Assignment::uniform(&tree, tech.rules().default_id());
        let r = evaluate(&tree, &tech, &asg, &PowerModel::new(1.0));
        assert!((r.sink_cap_ff() - design.total_sink_cap_ff()).abs() < 1e-9);
    }

    #[test]
    fn per_edge_downgrade_reduces_power_additively() {
        let (tree, tech) = setup(60);
        let rules = tech.rules();
        let m = PowerModel::new(1.0);
        let mut asg = Assignment::uniform(&tree, rules.most_conservative_id());
        let base = evaluate(&tree, &tech, &asg, &m);
        // Downgrade one edge; the delta must equal the closed-form cap delta.
        let e = tree.edges().next().unwrap();
        let len_um = tree.node(e).edge_len_nm() as f64 / 1_000.0;
        let c_hi = tech.clock_unit_c(rules.rule(rules.most_conservative_id()));
        let c_lo = tech.clock_unit_c(rules.rule(rules.default_id()));
        asg.set(e, rules.default_id());
        let after = evaluate(&tree, &tech, &asg, &m);
        let expect = units::switching_power_uw((c_hi - c_lo) * len_um, tech.vdd_v(), 1.0, 1.0);
        assert!((base.total_uw() - after.total_uw() - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different tree")]
    fn mismatched_assignment_panics() {
        let (tree, tech) = setup(10);
        let (other, _) = setup(20);
        let asg = Assignment::uniform(&other, tech.rules().default_id());
        let _ = evaluate(&tree, &tech, &asg, &PowerModel::new(1.0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_activity_panics() {
        let _ = PowerModel::new(1.0).with_activity(1.5);
    }

    #[test]
    fn corner_scales_wire_power() {
        use snr_tech::Corner;
        let (tree, tech) = setup(60);
        let asg = Assignment::uniform(&tree, tech.rules().default_id());
        let m = PowerModel::new(1.0);
        let tt = evaluate_at_corner(&tree, &tech, &asg, &m, Corner::typical());
        let nominal = evaluate(&tree, &tech, &asg, &m);
        assert!((tt.total_uw() - nominal.total_uw()).abs() < 1e-9);

        let ss = evaluate_at_corner(&tree, &tech, &asg, &m, Corner::slow());
        // Slow corner: +10% C but -10% VDD (squared) => wire power shifts by
        // 1.10 * 0.81.
        let expect = nominal.wire_uw() * 1.10 * 0.9 * 0.9;
        assert!((ss.wire_uw() - expect).abs() < 1e-9 * (1.0 + expect));
        assert!(ss.leakage_uw() == nominal.leakage_uw());
    }

    #[test]
    fn display_mentions_total() {
        let (tree, tech) = setup(20);
        let asg = Assignment::uniform(&tree, tech.rules().default_id());
        let r = evaluate(&tree, &tech, &asg, &PowerModel::new(1.0));
        assert!(r.to_string().contains("total"));
    }
}
