//! `smart-ndr` — command-line front end for the smart-NDR flow.
//!
//! ```text
//! smart-ndr gen   --sinks 800 --seed 7 --out design.sndr
//! smart-ndr run   --design design.sndr [--tech n45|n32]
//!                 [--method smart|greedy|upgrade|level|uniform|anneal|lagrangian]
//!                 [--slew-margin 1.1] [--skew-budget 30] [--svg tree.svg] [--mc 200] [--jobs 4]
//!                 [--timeout 30] [--max-iters 100000] [--store cache/] [--no-cache]
//! smart-ndr run   --sinks 500 --seed 3            # generate on the fly
//! smart-ndr pareto --sinks 800 --seed 23 [--slew-margins 1.05,1.25] [--skew-budgets 10,60]
//!                 [--windows 40,15] [--track-fracs 0.9] [--jobs 4] [--store cache/]
//! smart-ndr lint  --design design.sndr [--repair [--out fixed.sndr]]   # validate / repair
//! smart-ndr suite [--designs dir/] [--jobs 4] [--out table.txt [--resume]]
//!                 [--store cache/] [--no-cache]
//! smart-ndr serve [--jobs 4] [--queue 64] [--cache 32] [--socket PATH] [--store cache/]
//! smart-ndr mesh  --sinks 800 [--grid 16] [--rule default|2w2s]   # mesh-vs-tree comparison
//! ```
//!
//! Every command is a thin adapter over the typed request→plan→execute API
//! in [`snr_serve`]: the CLI builds a [`snr_serve::Request`] from flags,
//! plans and executes it, and renders the response with the same shared
//! serializers the resident daemon uses — one code path for one-shot and
//! resident execution, so `run --json` output and `serve` responses cannot
//! drift.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success (for `lint`: design is clean, or was repaired) |
//! | 1    | usage error (bad flags, unknown command) |
//! | 3    | invalid input (unreadable, malformed or rejected design) |
//! | 4    | infeasible (design loads but cannot be synthesized under the constraints) |
//!
//! With `--json`, failures print a structured `{"error": {"code", "message"}}`
//! object on stdout so callers never have to scrape stderr.
//!
//! # Parallelism and panics
//!
//! `--jobs <N>` (alias `-j <N>`) runs the Monte Carlo samples of `run --mc`
//! and the per-design flow of `suite` on `N` worker threads. Output is
//! bit-identical for every job count: sample seeds are derived per index and
//! rows print in suite order. Worker panics never abort the process:
//!
//! * `suite` catches a panicking design inside its worker and prints a
//!   `FAILED` row with the truncated panic message in the reason column
//!   (exit stays 0 — the table was produced);
//! * `run` maps a panicking Monte Carlo worker to the typed *infeasible*
//!   error (exit 4), or *invalid input* (exit 3) if the design never loaded.
//!
//! # Run supervision
//!
//! `run --timeout <SECS>` arms a cooperative deadline and `--max-iters <N>`
//! caps every optimizer phase at `N` iterations; both are *anytime* bounds —
//! the optimizer returns its best feasible solution so far and the `--json`
//! output carries a `"supervision"` object (per-phase budget receipts plus
//! the degradation-ladder record). `suite --out <FILE> --resume` journals
//! each completed row to `<FILE>.journal.jsonl` and skips journaled rows on
//! the next run; the final `--out` file is written atomically and is
//! byte-identical whether or not the run was interrupted.
//!
//! # Serve mode
//!
//! `smart-ndr serve` keeps parsed designs, synthesized trees and warm
//! statistics resident and speaks line-delimited JSON over stdin/stdout
//! (or `--socket <PATH>`): job requests (`run`/`lint`/`suite`) carry an
//! `"id"` and stream progress events; control requests (`stats`, `cancel`,
//! `shutdown`) are answered immediately. See `DESIGN.md` §3.9 for the
//! protocol.

use smart_ndr::core::{NdrOptimizer, OptContext, SmartNdr};
use smart_ndr::cts::{save_assignment, svg::render_svg, svg::SvgOptions, synthesize, CtsOptions};
use smart_ndr::netlist::{load_design, save_design, BenchmarkSpec, Design};
use smart_ndr::power::PowerModel;
use snr_fsio::{atomic_write, Journal};
use snr_serve::json::json_escape;
use snr_serve::render::{
    error_json, export_ndr_json, import_json, lint_json, pareto_human, pareto_json, run_human,
    run_json, suite_det_header, suite_header,
};
use snr_serve::{
    execute, plan, ApiCode, ApiError, CacheMode, DesignSource, Event, ExecCtx, ExportNdrRequest,
    ImportRequest, LintRequest, Method, ParetoRequest, Plan, Request, Response, ResultStore,
    RunRequest, ServeConfig, SuiteRequest, SuiteRow, SuiteSource, TechId,
};
use std::collections::HashMap;
use std::fs;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Mutex;

const USAGE: &str = "\
smart-ndr: per-edge NDR assignment for clock power reduction

USAGE:
  smart-ndr gen   --sinks <N> [--seed <S>] [--freq <GHz>] --out <FILE>
  smart-ndr run   (--design <FILE> | --sinks <N> [--seed <S>])
                  [--tech n45|n32]
                  [--method smart|greedy|upgrade|level|uniform|anneal|lagrangian]
                  [--slew-margin <X>] [--skew-budget <PS>] [--svg <FILE>] [--mc <SAMPLES>]
                  [--save-asg <FILE>] [--jobs <N>] [--json]
                  [--timeout <SECS>] [--max-iters <N>] [--store <DIR>] [--no-cache]
  smart-ndr pareto (--design <FILE> | --sinks <N> [--seed <S>])
                  [--tech n45|n32] [--slew-margins 1.05,1.1,1.25]
                  [--skew-budgets 10,30,60] [--windows 40,15] [--track-fracs 0.9,0.8]
                  [--corners] [--mc <SAMPLES>] [--jobs <N>] [--json]
                  [--timeout <SECS>] [--max-points <N>] [--store <DIR>] [--no-cache]
  smart-ndr lint  --design <FILE> [--tech n45|n32] [--repair] [--out <FILE>] [--json]
  smart-ndr import --design <FILE.def> [--tech n45|n32] [--repair]
                  [--out <FILE.sndr>] [--json]
  smart-ndr export-ndr (--design <FILE> | --sinks <N> [--seed <S>]) [--tech n45|n32]
                  [--method smart|greedy|...] [--slew-margin <X>] [--skew-budget <PS>]
                  [--from-tcl <FILE.tcl>] [--out <FILE.tcl>] [--save-asg <FILE>] [--json]
  smart-ndr suite [--tech n45|n32] [--designs <DIR>] [--jobs <N>]
                  [--out <FILE> [--resume]] [--store <DIR>] [--no-cache]
  smart-ndr serve [--jobs <N>] [--queue <N>] [--cache <N>] [--socket <PATH>]
                  [--store <DIR>]
  smart-ndr mesh  (--design <FILE> | --sinks <N> [--seed <S>]) [--tech n45|n32]
                  [--grid <N>] [--drivers <K>] [--rule default|2w2s]
  smart-ndr help

PARETO:
  pareto sweeps the constraint space (slew margins x skew budgets /
  useful-skew windows x optional track budgets) and prints the
  non-dominated front over (power, skew, σ-skew, track cost). The
  front is bit-identical for any --jobs value; --timeout returns the
  front over the points that completed; --max-points evaluates a
  deterministic prefix of the sweep. Axis lists are comma-separated
  (an empty string clears an axis).

IMPORT / EXPORT:
  import reads an external DEF-lite/ISPD clock-sink file through a
  bounded, panic-free parser; damaged records are skipped with typed
  I-series diagnostics and --repair salvages semantic damage. --out
  writes the canonical .sndr, ready for run/suite/pareto. export-ndr
  solves an assignment (or reimports one with --from-tcl) and emits
  deterministic OpenROAD create_ndr/assign_ndr Tcl.

SUPERVISION:
  --timeout <SECS>    cooperative wall-clock deadline (0 = off); anytime —
                      the best feasible solution found so far is returned
  --max-iters <N>     per-phase iteration cap (0 = off); deterministic
  suite --resume      skip rows journaled in <OUT>.journal.jsonl by an
                      earlier interrupted run (requires --out)

CACHING:
  --store <DIR>       durable content-addressed result store: clean runs
                      persist to DIR and replay byte-identically on the
                      next identical invocation; entries failing integrity
                      verification are quarantined to DIR/corrupt/ and the
                      result is recomputed from scratch
  --no-cache          bypass warm caches and the store for this invocation
                      (serve requests take {\"cache\": \"off\"} per request)

SERVE:
  serve reads one JSON request per line from stdin (or --socket <PATH>)
  and writes id-tagged JSON responses and progress events to stdout.
  Parsed designs and synthesized trees stay warm across requests;
  `{\"op\": \"stats\"}` reports cache hits, queue depth and phase timings.
  EOF or `{\"op\": \"shutdown\"}` drains the queue and exits 0.

EXIT CODES:
  0 success / lint-clean    1 usage error
  3 invalid input           4 infeasible constraints
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            if json {
                println!("{}", error_json(&err));
            } else {
                eprintln!("error: {}", err.message());
                if err.code() == ApiCode::Usage {
                    eprintln!("\n{USAGE}");
                }
            }
            ExitCode::from(err.code().exit_code())
        }
    }
}

fn run(args: Vec<String>) -> Result<(), ApiError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(ApiError::usage("no command given"));
    };
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "run" => cmd_run(&flags),
        "pareto" => cmd_pareto(&flags),
        "lint" => cmd_lint(&flags),
        "import" => cmd_import(&flags),
        "export-ndr" => cmd_export_ndr(&flags),
        "suite" => cmd_suite(&flags),
        "serve" => cmd_serve(&flags),
        "mesh" => cmd_mesh(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(ApiError::usage(format!("unknown command {other:?}"))),
    }
}

/// Flags that take no value; present means "true".
const BOOL_FLAGS: &[&str] = &["json", "repair", "resume", "no-cache", "corners"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, ApiError> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let key = match arg.strip_prefix("--") {
            Some(key) => key,
            None if arg == "-j" => "jobs",
            None => return Err(ApiError::usage(format!("expected --flag, got {arg:?}"))),
        };
        if BOOL_FLAGS.contains(&key) {
            flags.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| ApiError::usage(format!("flag --{key} needs a value")))?;
        flags.insert(key.to_owned(), value.clone());
    }
    Ok(flags)
}

fn get_parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, ApiError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| ApiError::usage(format!("invalid --{key} {v:?}"))),
    }
}

/// `--jobs <N>` / `-j <N>`, or `None` when absent so each command keeps its
/// own default (Monte Carlo auto-detects cores, the suite stays serial).
fn jobs_of(flags: &HashMap<String, String>) -> Result<Option<usize>, ApiError> {
    match flags.get("jobs") {
        None => Ok(None),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| ApiError::usage(format!("invalid --jobs {v:?}")))?;
            if n == 0 {
                return Err(ApiError::usage("--jobs must be at least 1"));
            }
            Ok(Some(n))
        }
    }
}

fn tech_of(flags: &HashMap<String, String>) -> Result<TechId, ApiError> {
    match flags.get("tech") {
        None => Ok(TechId::default()),
        Some(v) => TechId::parse(v),
    }
}

/// `--no-cache` maps to the API's `"cache": "off"`: skip warm caches and
/// the durable store for this invocation.
fn cache_of(flags: &HashMap<String, String>) -> CacheMode {
    if flags.contains_key("no-cache") {
        CacheMode::Off
    } else {
        CacheMode::On
    }
}

/// Opens the durable result store named by `--store <DIR>`, if any. An
/// unopenable store degrades to a warning — the run still computes.
fn store_of(flags: &HashMap<String, String>) -> Option<ResultStore> {
    let dir = flags.get("store")?;
    match ResultStore::open(Path::new(dir)) {
        Ok(store) => Some(store),
        Err(e) => {
            eprintln!("warning: result store disabled ({dir}: {e})");
            None
        }
    }
}

/// One stderr line of store traffic for this invocation, when attached.
fn store_note(store: Option<&ResultStore>) {
    let Some(store) = store else { return };
    let s = store.stats();
    eprintln!(
        "store: {} hit(s), {} miss(es), {} quarantined, {} write(s)",
        s.hits, s.misses, s.quarantined, s.writes
    );
}

/// The design a `run` request names: a file path, or a generator spec from
/// `--sinks`/`--seed`/`--freq`.
fn design_source_of(flags: &HashMap<String, String>) -> Result<DesignSource, ApiError> {
    if let Some(path) = flags.get("design") {
        return Ok(DesignSource::Path(path.clone()));
    }
    let sinks: usize = get_parsed(flags, "sinks", 0)?;
    if sinks == 0 {
        return Err(ApiError::usage("need --design <FILE> or --sinks <N>"));
    }
    let seed: u64 = get_parsed(flags, "seed", 1)?;
    let freq_ghz: f64 = get_parsed(flags, "freq", 1.0)?;
    Ok(DesignSource::Generate { sinks, seed, freq_ghz })
}

/// Loads or generates a design eagerly — for `gen` and `mesh`, which need
/// the design itself rather than a plan over it.
fn design_of(flags: &HashMap<String, String>) -> Result<Design, ApiError> {
    if let Some(path) = flags.get("design") {
        let file = fs::File::open(path)
            .map_err(|e| ApiError::invalid(format!("cannot open {path}: {e}")))?;
        return load_design(BufReader::new(file)).map_err(|e| ApiError::invalid(e.to_string()));
    }
    let sinks: usize = get_parsed(flags, "sinks", 0)?;
    if sinks == 0 {
        return Err(ApiError::usage("need --design <FILE> or --sinks <N>"));
    }
    let seed: u64 = get_parsed(flags, "seed", 1)?;
    let freq: f64 = get_parsed(flags, "freq", 1.0)?;
    BenchmarkSpec::new(format!("cli-s{sinks}"), sinks)
        .seed(seed)
        .freq_ghz(freq)
        .build()
        .map_err(|e| ApiError::invalid(e.to_string()))
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), ApiError> {
    let design = design_of(flags)?;
    let out = flags
        .get("out")
        .ok_or_else(|| ApiError::usage("gen needs --out <FILE>"))?;
    let file = fs::File::create(out)
        .map_err(|e| ApiError::invalid(format!("cannot create {out}: {e}")))?;
    save_design(&design, file).map_err(|e| ApiError::invalid(e.to_string()))?;
    println!("wrote {design} to {out}");
    Ok(())
}

/// `smart-ndr run`: build the typed request from flags, plan, execute
/// one-shot, render. The engine is exactly the daemon's; only the
/// presentation here is CLI-specific.
fn cmd_run(flags: &HashMap<String, String>) -> Result<(), ApiError> {
    let json = flags.contains_key("json");
    let mut req = RunRequest::new(design_source_of(flags)?);
    req.tech = tech_of(flags)?;
    if let Some(m) = flags.get("method") {
        req.method = Method::parse(m)?;
    }
    req.slew_margin = get_parsed(flags, "slew-margin", req.slew_margin)?;
    req.skew_budget_ps = get_parsed(flags, "skew-budget", req.skew_budget_ps)?;
    req.mc_samples = get_parsed(flags, "mc", 0)?;
    req.jobs = jobs_of(flags)?;
    req.timeout_s = get_parsed(flags, "timeout", 0.0)?;
    req.max_iters = get_parsed(flags, "max-iters", 0)?;
    req.cache = cache_of(flags);

    // A replayed run carries rendered text only — no live tree or
    // assignment — so artifact-producing flags keep the store detached
    // and always compute.
    let wants_artifacts = flags.contains_key("svg") || flags.contains_key("save-asg");
    let store = if wants_artifacts {
        if flags.contains_key("store") {
            eprintln!("note: --store is ignored with --svg/--save-asg (artifacts need a live run)");
        }
        None
    } else {
        store_of(flags)
    };

    let plan = plan(&Request::Run(req))?;
    let sink = |event: &Event| {
        if let Event::StoreQuarantined { detail, .. } = event {
            eprintln!("warning: {detail}; recomputing from scratch");
        }
    };
    let ctx = ExecCtx { cache: None, store: store.as_ref(), sink: Some(&sink), on_token: None };
    let resp = match execute(&plan, &ctx)? {
        Response::Run(resp) => resp,
        Response::Replayed(r) => {
            // The stored entry holds the cold run's rendered bytes, so a
            // warm replay prints exactly what the cold run printed.
            if json {
                println!("{}", r.run_json);
            } else {
                print!("{}", r.human);
            }
            store_note(store.as_ref());
            return Ok(());
        }
        _ => unreachable!("run plans produce run responses"),
    };

    if !json {
        print!("{}", run_human(&resp));
    }

    if let Some(path) = flags.get("save-asg") {
        let file = fs::File::create(path)
            .map_err(|e| ApiError::invalid(format!("cannot create {path}: {e}")))?;
        save_assignment(resp.result.assignment(), &resp.tree, file)
            .map_err(|e| ApiError::invalid(e.to_string()))?;
        if !json {
            println!("wrote {path}");
        }
    }

    if let Some(path) = flags.get("svg") {
        let svg = render_svg(
            &resp.tree,
            resp.tech.rules(),
            resp.result.assignment(),
            &SvgOptions::default(),
        );
        fs::write(path, svg)
            .map_err(|e| ApiError::invalid(format!("cannot write {path}: {e}")))?;
        if !json {
            println!("wrote {path}");
        }
    }

    if json {
        println!("{}", run_json(&resp));
    }
    store_note(store.as_ref());
    Ok(())
}

/// A comma-separated `--<key> a,b,c` list of numbers; `None` when the
/// flag is absent (keep the request default), `Some(vec![])` for an
/// explicit empty string (clear the axis).
fn f64_list_of(
    flags: &HashMap<String, String>,
    key: &str,
) -> Result<Option<Vec<f64>>, ApiError> {
    let Some(raw) = flags.get(key) else { return Ok(None) };
    if raw.trim().is_empty() {
        return Ok(Some(Vec::new()));
    }
    raw.split(',')
        .map(|item| {
            item.trim()
                .parse::<f64>()
                .map_err(|_| ApiError::usage(format!("invalid --{key} value {item:?}")))
        })
        .collect::<Result<Vec<f64>, ApiError>>()
        .map(Some)
}

/// `smart-ndr pareto`: sweep the constraint space and print the
/// non-dominated front. Same engine as the daemon's `pareto` op; the
/// CLI only adds flag parsing and the table rendering.
fn cmd_pareto(flags: &HashMap<String, String>) -> Result<(), ApiError> {
    let json = flags.contains_key("json");
    let mut req = ParetoRequest::new(design_source_of(flags)?);
    req.tech = tech_of(flags)?;
    if let Some(v) = f64_list_of(flags, "slew-margins")? {
        req.slew_margins = v;
    }
    if let Some(v) = f64_list_of(flags, "skew-budgets")? {
        req.skew_budgets_ps = v;
    }
    if let Some(v) = f64_list_of(flags, "windows")? {
        req.windows_ps = v;
    }
    if let Some(v) = f64_list_of(flags, "track-fracs")? {
        req.track_fracs = v;
    }
    req.corners = flags.contains_key("corners");
    req.mc_samples = get_parsed(flags, "mc", req.mc_samples)?;
    req.jobs = jobs_of(flags)?;
    req.timeout_s = get_parsed(flags, "timeout", 0.0)?;
    req.max_points = get_parsed(flags, "max-points", 0)?;
    req.cache = cache_of(flags);

    let store = store_of(flags);
    let plan = plan(&Request::Pareto(req))?;
    let sink = |event: &Event| {
        if let Event::StoreQuarantined { detail, .. } = event {
            eprintln!("warning: {detail}; recomputing from scratch");
        }
    };
    let ctx = ExecCtx { cache: None, store: store.as_ref(), sink: Some(&sink), on_token: None };
    let resp = match execute(&plan, &ctx)? {
        Response::Pareto(resp) => resp,
        _ => unreachable!("pareto plans produce pareto responses"),
    };

    if json {
        println!("{}", pareto_json(&resp));
    } else {
        print!("{}", pareto_human(&resp));
    }
    store_note(store.as_ref());
    Ok(())
}

/// `smart-ndr lint`: validate (and optionally repair) a `.sndr` design
/// without running the flow. Every diagnostic and every repair action is
/// printed; a feasibility smoke-check (can the default CTS flow synthesize
/// the design at all?) separates "invalid input" from "infeasible".
fn cmd_lint(flags: &HashMap<String, String>) -> Result<(), ApiError> {
    let path = flags
        .get("design")
        .ok_or_else(|| ApiError::usage("lint needs --design <FILE>"))?;
    let json = flags.contains_key("json");
    let req = Request::Lint(LintRequest {
        design: DesignSource::Path(path.clone()),
        tech: tech_of(flags)?,
        repair: flags.contains_key("repair"),
    });

    let plan = plan(&req)?;
    let resp = match execute(&plan, &ExecCtx::oneshot()) {
        Ok(Response::Lint(resp)) => resp,
        Ok(_) => unreachable!("lint plans produce lint responses"),
        Err(err) => {
            // Surface the individual diagnostics before failing, so the
            // user sees every problem at once instead of the first.
            if !json {
                for d in err.details() {
                    println!("{d}");
                }
            }
            return Err(err);
        }
    };

    if !json {
        for d in &resp.diagnostics {
            println!("{d}");
        }
        for r in &resp.repairs {
            println!("{r}");
        }
    }

    if let Some(out) = flags.get("out") {
        let file = fs::File::create(out)
            .map_err(|e| ApiError::invalid(format!("cannot create {out}: {e}")))?;
        save_design(&resp.design, file).map_err(|e| ApiError::invalid(e.to_string()))?;
    }

    if json {
        println!("{}", lint_json(&resp));
    } else {
        println!(
            "{}: {} ({} diagnostics, {} repairs)",
            resp.design.name(),
            resp.status(),
            resp.diagnostics.len(),
            resp.repairs.len(),
        );
    }
    Ok(())
}

/// `smart-ndr import`: bring an external DEF-lite/ISPD design into the
/// native database. Hostile input is the expected case — the importer is
/// bounded and recoverable, so this command reports typed I-series
/// diagnostics instead of crashing. `--out` writes the canonical `.sndr`
/// so imported designs feed straight into run/suite/pareto (and get
/// content-byte store keys like any other design).
fn cmd_import(flags: &HashMap<String, String>) -> Result<(), ApiError> {
    let path = flags
        .get("design")
        .ok_or_else(|| ApiError::usage("import needs --design <FILE>"))?;
    let json = flags.contains_key("json");
    let req = Request::Import(ImportRequest {
        design: DesignSource::Path(path.clone()),
        tech: tech_of(flags)?,
        repair: flags.contains_key("repair"),
    });

    let plan = plan(&req)?;
    let resp = match execute(&plan, &ExecCtx::oneshot()) {
        Ok(Response::Import(resp)) => resp,
        Ok(_) => unreachable!("import plans produce import responses"),
        Err(err) => {
            // Like lint: surface every diagnostic before failing.
            if !json {
                for d in err.details() {
                    println!("{d}");
                }
            }
            return Err(err);
        }
    };

    if !json {
        for d in &resp.diagnostics {
            println!("{d}");
        }
        for r in &resp.repairs {
            println!("{r}");
        }
    }

    if let Some(out) = flags.get("out") {
        let file = fs::File::create(out)
            .map_err(|e| ApiError::invalid(format!("cannot create {out}: {e}")))?;
        save_design(&resp.design, file).map_err(|e| ApiError::invalid(e.to_string()))?;
        if !json {
            println!("wrote {out}");
        }
    }

    if json {
        println!("{}", import_json(&resp));
    } else {
        println!(
            "{}: imported {} ({} sinks, {} diagnostics, {} repairs)",
            resp.design.name(),
            resp.status(),
            resp.design.sinks().len(),
            resp.diagnostics.len(),
            resp.repairs.len(),
        );
    }
    Ok(())
}

/// `smart-ndr export-ndr`: solve an assignment for a design and emit the
/// OpenROAD `create_ndr`/`assign_ndr` Tcl a physical-design flow
/// consumes — or, with `--from-tcl`, parse such a script back and
/// re-render it (the round-trip path the interop checks diff). The
/// script goes to `--out` or stdout; `--save-asg` additionally writes
/// the assignment in the native `.asg` format.
fn cmd_export_ndr(flags: &HashMap<String, String>) -> Result<(), ApiError> {
    let json = flags.contains_key("json");
    let mut req = ExportNdrRequest::new(design_source_of(flags)?);
    req.tech = tech_of(flags)?;
    if let Some(m) = flags.get("method") {
        req.method = Method::parse(m)?;
    }
    req.slew_margin = get_parsed(flags, "slew-margin", req.slew_margin)?;
    req.skew_budget_ps = get_parsed(flags, "skew-budget", req.skew_budget_ps)?;
    req.from_tcl = flags.get("from-tcl").cloned();

    let plan = plan(&Request::ExportNdr(req))?;
    let resp = match execute(&plan, &ExecCtx::oneshot())? {
        Response::ExportNdr(resp) => resp,
        _ => unreachable!("export-ndr plans produce export-ndr responses"),
    };

    match flags.get("out") {
        Some(out) => {
            fs::write(out, resp.tcl.as_bytes())
                .map_err(|e| ApiError::invalid(format!("cannot write {out}: {e}")))?;
            if !json {
                println!(
                    "wrote {out} ({} NDR assignment(s) over {} nodes)",
                    resp.assigned(),
                    resp.tree.len()
                );
            }
        }
        None if !json => print!("{}", resp.tcl),
        None => {}
    }

    if let Some(path) = flags.get("save-asg") {
        let file = fs::File::create(path)
            .map_err(|e| ApiError::invalid(format!("cannot create {path}: {e}")))?;
        save_assignment(&resp.assignment, &resp.tree, file)
            .map_err(|e| ApiError::invalid(e.to_string()))?;
        if !json {
            println!("wrote {path}");
        }
    }

    if json {
        println!("{}", export_ndr_json(&resp));
    }
    Ok(())
}

fn cmd_mesh(flags: &HashMap<String, String>) -> Result<(), ApiError> {
    use smart_ndr::mesh::{ClockMesh, MeshSpec};
    use smart_ndr::tech::Rule;

    let design = design_of(flags)?;
    let tech = tech_of(flags)?.resolve();
    let grid: usize = get_parsed(flags, "grid", 16)?;
    let drivers: usize = get_parsed(flags, "drivers", 3)?;
    let rule = match flags.get("rule").map(String::as_str).unwrap_or("default") {
        "default" => Rule::DEFAULT,
        "2w2s" => Rule::new(2.0, 2.0).expect("2W2S is valid"),
        other => return Err(ApiError::usage(format!("unknown --rule {other:?} (default|2w2s)"))),
    };

    println!("design: {design}");
    let tree = synthesize(&design, &tech, &CtsOptions::default())
        .map_err(|e| ApiError::infeasible(e.to_string()))?;
    let ctx = OptContext::new(&tree, &tech, PowerModel::new(design.freq_ghz()));
    let smart = SmartNdr::default().optimize(&ctx);
    println!("tree:   {smart}");

    let spec =
        MeshSpec::new(grid, grid, drivers, rule).map_err(|e| ApiError::usage(e.to_string()))?;
    let mesh = ClockMesh::build(&design, &tech, spec);
    let rep = mesh.analyze(&tech, design.freq_ghz());
    println!("{rep} ({} drivers)", rep.n_drivers);
    println!(
        "mesh / tree network power: {:.2}x",
        rep.network_uw() / smart.power().network_uw()
    );
    Ok(())
}

/// The journal path for a `suite --out` file: `<out>.journal.jsonl`.
fn journal_path(out: &Path) -> PathBuf {
    let mut os = out.as_os_str().to_owned();
    os.push(".journal.jsonl");
    PathBuf::from(os)
}

/// One journal line for a completed row: flat JSON with the fields needed
/// to reproduce the row byte-identically on `--resume`.
fn journal_record(row: &SuiteRow) -> String {
    format!(
        "{{\"name\": \"{}\", \"failed\": {}, \"line\": \"{}\", \"diag\": \"{}\"}}",
        json_escape(&row.name),
        row.failed,
        json_escape(&row.line),
        json_escape(row.diagnostic.as_deref().unwrap_or("")),
    )
}

/// Extracts and unescapes the string value of `key` from a flat one-line
/// JSON object written by [`journal_record`]. `None` on malformed input.
fn json_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

/// Parses one journal line back into a (resumed) row. Malformed lines
/// return `None` and the design is simply re-evaluated.
fn journal_row(line: &str) -> Option<SuiteRow> {
    let name = json_field(line, "name")?;
    let row_line = json_field(line, "line")?;
    let diag = json_field(line, "diag")?;
    Some(SuiteRow {
        diagnostic: (!diag.is_empty()).then_some(diag),
        name,
        line: row_line,
        runtime_s: None,
        failed: line.contains("\"failed\": true"),
    })
}

/// `smart-ndr suite`: the headline table. Robust by construction — every
/// design runs inside `catch_unwind` (see the executor), so one poisoned
/// design yields a `FAILED` row and the run continues with the remaining
/// designs. With `--jobs <N>` the designs evaluate on `N` worker threads;
/// rows always print in suite order, so the table is byte-identical for any
/// job count. Always exits 0 when the table itself could be produced.
///
/// With `--out <FILE>` the deterministic columns (runtime excluded) are
/// additionally written to `FILE` through [`atomic_write`], and every
/// completed row is journaled to `<FILE>.journal.jsonl` as it finishes (via
/// the executor's event stream); `--resume` restores journaled rows instead
/// of re-evaluating them, so an interrupted run picks up where it stopped
/// and still produces the byte-identical `FILE`. The journal is deleted
/// once `FILE` lands.
fn cmd_suite(flags: &HashMap<String, String>) -> Result<(), ApiError> {
    let out_path = flags.get("out").map(PathBuf::from);
    let resume = flags.contains_key("resume");
    if resume && out_path.is_none() {
        return Err(ApiError::usage(
            "suite --resume needs --out <FILE> (the journal lives next to it)",
        ));
    }
    let req = Request::Suite(SuiteRequest {
        source: match flags.get("designs") {
            None => SuiteSource::Builtin,
            Some(dir) => SuiteSource::Dir(dir.clone()),
        },
        tech: tech_of(flags)?,
        jobs: jobs_of(flags)?,
        prefilled: Vec::new(),
        cache: cache_of(flags),
    });
    let store = store_of(flags);
    let mut plan = plan(&req)?;

    // Rows completed by an earlier interrupted run, restored from the
    // journal and injected into the plan so the executor skips them.
    let journal = match &out_path {
        None => None,
        Some(out) => {
            let jpath = journal_path(out);
            let j = if resume {
                let (j, lines) = Journal::resume(&jpath).map_err(|e| {
                    ApiError::invalid(format!("cannot resume journal {}: {e}", jpath.display()))
                })?;
                let Plan::Suite(sp) = &mut plan else {
                    unreachable!("suite requests produce suite plans")
                };
                for row in lines.iter().filter_map(|l| journal_row(l)) {
                    sp.prefilled.insert(row.name.clone(), row);
                }
                j
            } else {
                // A fresh run must not inherit rows from an older one.
                match fs::remove_file(&jpath) {
                    Err(e) if e.kind() != std::io::ErrorKind::NotFound => {
                        return Err(ApiError::invalid(format!(
                            "cannot clear stale journal {}: {e}",
                            jpath.display()
                        )));
                    }
                    _ => {}
                }
                Journal::open(&jpath).map_err(|e| {
                    ApiError::invalid(format!("cannot open journal {}: {e}", jpath.display()))
                })?
            };
            Some(Mutex::new(j))
        }
    };

    println!("{}", suite_header());
    let journal_ref = journal.as_ref();
    // Fresh rows reach this sink from the executor's worker threads the
    // moment they complete; journaling here (not after the barrier) is
    // what makes --resume survive a mid-run kill.
    let sink = |event: &Event| {
        if let Event::StoreQuarantined { detail, .. } = event {
            eprintln!("warning: {detail}; recomputing from scratch");
            return;
        }
        let Event::SuiteRow(row) = event else { return };
        if let Some(j) = journal_ref {
            let record = journal_record(row);
            // A journaling failure must not fail the run — the table is
            // still produced; only resumability is lost.
            match j.lock() {
                Ok(mut j) => {
                    if let Err(e) = j.append(&record) {
                        eprintln!("warning: cannot journal row {}: {e}", row.name);
                    }
                }
                Err(poisoned) => drop(poisoned),
            }
        }
    };
    let ctx = ExecCtx { cache: None, store: store.as_ref(), sink: Some(&sink), on_token: None };
    let resp = match execute(&plan, &ctx)? {
        Response::Suite(resp) => resp,
        _ => unreachable!("suite plans produce suite responses"),
    };

    for row in &resp.rows {
        if let Some(diag) = &row.diagnostic {
            eprintln!("{diag}");
        }
        println!("{}", row.stdout_line());
    }
    let mut tail = String::new();
    if resp.failed > 0 {
        tail = format!("{} of {} designs FAILED", resp.failed, resp.rows.len());
        println!("{tail}");
    }

    if let Some(out) = &out_path {
        // The artifact keeps only deterministic columns, so a resumed run
        // reproduces it byte-for-byte.
        let mut text = String::new();
        text.push_str(suite_det_header().trim_end());
        text.push('\n');
        for row in &resp.rows {
            text.push_str(row.line.trim_end());
            text.push('\n');
        }
        if !tail.is_empty() {
            text.push_str(&tail);
            text.push('\n');
        }
        atomic_write(out, text.as_bytes())
            .map_err(|e| ApiError::invalid(format!("cannot write {}: {e}", out.display())))?;
        if let Some(j) = journal {
            let j = j.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Err(e) = j.remove() {
                eprintln!("warning: cannot remove journal: {e}");
            }
        }
    }
    store_note(store.as_ref());
    Ok(())
}

/// `smart-ndr serve`: the resident daemon. See the module docs and
/// `DESIGN.md` §3.9 for the protocol.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), ApiError> {
    let mut config = ServeConfig::default();
    if let Some(n) = jobs_of(flags)? {
        config.workers = n;
    }
    config.queue_capacity = get_parsed(flags, "queue", config.queue_capacity)?;
    if config.queue_capacity == 0 {
        return Err(ApiError::usage("--queue must be at least 1"));
    }
    config.cache_capacity = get_parsed(flags, "cache", config.cache_capacity)?;
    config.store_dir = flags.get("store").map(PathBuf::from);

    if let Some(path) = flags.get("socket") {
        #[cfg(unix)]
        return snr_serve::serve_socket(&config, Path::new(path))
            .map_err(|e| ApiError::invalid(format!("serve: cannot serve on {path}: {e}")));
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(ApiError::usage("--socket is only available on unix platforms"));
        }
    }
    snr_serve::serve_stdio(&config).map_err(|e| ApiError::invalid(format!("serve: {e}")))
}
