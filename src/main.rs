//! `smart-ndr` — command-line front end for the smart-NDR flow.
//!
//! ```text
//! smart-ndr gen   --sinks 800 --seed 7 --out design.sndr
//! smart-ndr run   --design design.sndr [--tech n45|n32]
//!                 [--method smart|greedy|upgrade|level|uniform|anneal|lagrangian]
//!                 [--slew-margin 1.1] [--skew-budget 30] [--svg tree.svg] [--mc 200] [--jobs 4]
//!                 [--timeout 30] [--max-iters 100000]
//! smart-ndr run   --sinks 500 --seed 3            # generate on the fly
//! smart-ndr lint  --design design.sndr [--repair [--out fixed.sndr]]   # validate / repair
//! smart-ndr suite [--designs dir/] [--jobs 4] [--out table.txt [--resume]]
//! smart-ndr mesh  --sinks 800 [--grid 16] [--rule default|2w2s]   # mesh-vs-tree comparison
//! ```
//!
//! # Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success (for `lint`: design is clean, or was repaired) |
//! | 1    | usage error (bad flags, unknown command) |
//! | 3    | invalid input (unreadable, malformed or rejected design) |
//! | 4    | infeasible (design loads but cannot be synthesized under the constraints) |
//!
//! With `--json`, failures print a structured `{"error": {"code", "message"}}`
//! object on stdout so callers never have to scrape stderr.
//!
//! # Parallelism and panics
//!
//! `--jobs <N>` (alias `-j <N>`) runs the Monte Carlo samples of `run --mc`
//! and the per-design flow of `suite` on `N` worker threads. Output is
//! bit-identical for every job count: sample seeds are derived per index and
//! rows print in suite order. Worker panics never abort the process:
//!
//! * `suite` catches a panicking design inside its worker and prints a
//!   `FAILED` row with the truncated panic message in the reason column
//!   (exit stays 0 — the table was produced);
//! * `run` maps a panicking Monte Carlo worker to the typed *infeasible*
//!   error (exit 4), or *invalid input* (exit 3) if the design never loaded.
//!
//! # Run supervision
//!
//! `run --timeout <SECS>` arms a cooperative deadline and `--max-iters <N>`
//! caps every optimizer phase at `N` iterations; both are *anytime* bounds —
//! the optimizer returns its best feasible solution so far and the `--json`
//! output carries a `"supervision"` object (per-phase budget receipts plus
//! the degradation-ladder record). `suite --out <FILE> --resume` journals
//! each completed row to `<FILE>.journal.jsonl` and skips journaled rows on
//! the next run; the final `--out` file is written atomically and is
//! byte-identical whether or not the run was interrupted.

use smart_ndr::core::{
    panic_message, Annealing, Budget, CancelToken, Cancelled, Constraints, Deadline,
    GreedyDowngrade, GreedyUpgradeRepair, Lagrangian, LevelBased, NdrOptimizer, OptContext,
    Outcome, SmartNdr, Uniform,
};
use smart_ndr::cts::{save_assignment, svg::render_svg, svg::SvgOptions, synthesize, CtsOptions};
use smart_ndr::netlist::validate::Bounds;
use smart_ndr::netlist::{
    ispd_like_suite, load_design, load_design_with, save_design, BenchmarkSpec, Design,
    ErrorKind, LoadOptions,
};
use smart_ndr::power::PowerModel;
use smart_ndr::tech::Technology;
use smart_ndr::variation::{MonteCarlo, VariationModel};
use snr_fsio::{atomic_write, Journal};
use snr_par::{par_map, Parallelism};
use std::collections::HashMap;
use std::fs;
use std::io::BufReader;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Duration;

const USAGE: &str = "\
smart-ndr: per-edge NDR assignment for clock power reduction

USAGE:
  smart-ndr gen   --sinks <N> [--seed <S>] [--freq <GHz>] --out <FILE>
  smart-ndr run   (--design <FILE> | --sinks <N> [--seed <S>])
                  [--tech n45|n32]
                  [--method smart|greedy|upgrade|level|uniform|anneal|lagrangian]
                  [--slew-margin <X>] [--skew-budget <PS>] [--svg <FILE>] [--mc <SAMPLES>]
                  [--save-asg <FILE>] [--jobs <N>] [--json]
                  [--timeout <SECS>] [--max-iters <N>]
  smart-ndr lint  --design <FILE> [--tech n45|n32] [--repair] [--out <FILE>] [--json]
  smart-ndr suite [--tech n45|n32] [--designs <DIR>] [--jobs <N>]
                  [--out <FILE> [--resume]]
  smart-ndr mesh  (--design <FILE> | --sinks <N> [--seed <S>]) [--tech n45|n32]
                  [--grid <N>] [--drivers <K>] [--rule default|2w2s]
  smart-ndr help

SUPERVISION:
  --timeout <SECS>    cooperative wall-clock deadline (0 = off); anytime —
                      the best feasible solution found so far is returned
  --max-iters <N>     per-phase iteration cap (0 = off); deterministic
  suite --resume      skip rows journaled in <OUT>.journal.jsonl by an
                      earlier interrupted run (requires --out)

EXIT CODES:
  0 success / lint-clean    1 usage error
  3 invalid input           4 infeasible constraints
";

/// A classified CLI failure: the variant decides the exit code and the
/// machine-readable `code` field of the `--json` error object.
enum CliError {
    /// Bad flags or unknown command — exit 1.
    Usage(String),
    /// The input design is unreadable, malformed or rejected — exit 3.
    InvalidInput(String),
    /// The design loads but the flow cannot satisfy it — exit 4.
    Infeasible(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    fn invalid(msg: impl Into<String>) -> Self {
        CliError::InvalidInput(msg.into())
    }

    fn infeasible(msg: impl Into<String>) -> Self {
        CliError::Infeasible(msg.into())
    }

    fn code(&self) -> &'static str {
        match self {
            CliError::Usage(_) => "usage",
            CliError::InvalidInput(_) => "invalid_input",
            CliError::Infeasible(_) => "infeasible",
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::InvalidInput(m) | CliError::Infeasible(m) => m,
        }
    }

    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 1,
            CliError::InvalidInput(_) => 3,
            CliError::Infeasible(_) => 4,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            if json {
                println!(
                    "{{\"error\": {{\"code\": \"{}\", \"message\": \"{}\"}}}}",
                    err.code(),
                    json_escape(err.message())
                );
            } else {
                eprintln!("error: {}", err.message());
                if matches!(err, CliError::Usage(_)) {
                    eprintln!("\n{USAGE}");
                }
            }
            ExitCode::from(err.exit_code())
        }
    }
}

fn run(args: Vec<String>) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::usage("no command given"));
    };
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "run" => cmd_run(&flags),
        "lint" => cmd_lint(&flags),
        "suite" => cmd_suite(&flags),
        "mesh" => cmd_mesh(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    }
}

/// Flags that take no value; present means "true".
const BOOL_FLAGS: &[&str] = &["json", "repair", "resume"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let key = match arg.strip_prefix("--") {
            Some(key) => key,
            None if arg == "-j" => "jobs",
            None => return Err(CliError::usage(format!("expected --flag, got {arg:?}"))),
        };
        if BOOL_FLAGS.contains(&key) {
            flags.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::usage(format!("flag --{key} needs a value")))?;
        flags.insert(key.to_owned(), value.clone());
    }
    Ok(flags)
}

fn get_parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --{key} {v:?}"))),
    }
}

/// `--jobs <N>` / `-j <N>` as a [`Parallelism`], or `None` when absent so
/// each command keeps its own default (Monte Carlo auto-detects cores, the
/// suite stays serial).
fn jobs_of(flags: &HashMap<String, String>) -> Result<Option<Parallelism>, CliError> {
    match flags.get("jobs") {
        None => Ok(None),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| CliError::usage(format!("invalid --jobs {v:?}")))?;
            if n == 0 {
                return Err(CliError::usage("--jobs must be at least 1"));
            }
            Ok(Some(Parallelism::new(n)))
        }
    }
}

/// `--timeout <SECS>` / `--max-iters <N>` as a [`Budget`] plus the deadline
/// token (shared with Monte Carlo so one timer bounds the whole command).
/// Zero means "off" for both, matching their defaults.
fn budget_of(flags: &HashMap<String, String>) -> Result<(Budget, Option<CancelToken>), CliError> {
    let timeout: f64 = get_parsed(flags, "timeout", 0.0)?;
    if !timeout.is_finite() || timeout < 0.0 {
        return Err(CliError::usage(format!("--timeout must be >= 0 seconds, got {timeout}")));
    }
    let max_iters: u64 = get_parsed(flags, "max-iters", 0)?;
    let mut budget = Budget::unlimited();
    if max_iters > 0 {
        budget = budget.with_max_iters(max_iters);
    }
    let token = (timeout > 0.0)
        .then(|| CancelToken::with_deadline(Deadline::after(Duration::from_secs_f64(timeout))));
    if let Some(t) = &token {
        budget = budget.with_token(t.clone());
    }
    Ok((budget, token))
}

fn tech_of(flags: &HashMap<String, String>) -> Result<Technology, CliError> {
    match flags.get("tech").map(String::as_str).unwrap_or("n45") {
        "n45" => Ok(Technology::n45()),
        "n32" => Ok(Technology::n32()),
        other => Err(CliError::usage(format!("unknown --tech {other:?} (n45|n32)"))),
    }
}

fn design_of(flags: &HashMap<String, String>) -> Result<Design, CliError> {
    if let Some(path) = flags.get("design") {
        let file = fs::File::open(path)
            .map_err(|e| CliError::invalid(format!("cannot open {path}: {e}")))?;
        return load_design(BufReader::new(file)).map_err(|e| CliError::invalid(e.to_string()));
    }
    let sinks: usize = get_parsed(flags, "sinks", 0)?;
    if sinks == 0 {
        return Err(CliError::usage("need --design <FILE> or --sinks <N>"));
    }
    let seed: u64 = get_parsed(flags, "seed", 1)?;
    let freq: f64 = get_parsed(flags, "freq", 1.0)?;
    BenchmarkSpec::new(format!("cli-s{sinks}"), sinks)
        .seed(seed)
        .freq_ghz(freq)
        .build()
        .map_err(|e| CliError::invalid(e.to_string()))
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let design = design_of(flags)?;
    let out = flags
        .get("out")
        .ok_or_else(|| CliError::usage("gen needs --out <FILE>"))?;
    let file =
        fs::File::create(out).map_err(|e| CliError::invalid(format!("cannot create {out}: {e}")))?;
    save_design(&design, file).map_err(|e| CliError::invalid(e.to_string()))?;
    println!("wrote {design} to {out}");
    Ok(())
}

/// Escapes `s` for use inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes an [`Outcome`] as a JSON object, including the per-rule
/// wirelength histogram.
fn outcome_json(
    out: &smart_ndr::core::Outcome,
    tree: &smart_ndr::cts::ClockTree,
    tech: &Technology,
) -> String {
    let usage = out.assignment().usage_um(tree, tech.rules());
    let histogram = tech
        .rules()
        .iter()
        .map(|(id, rule)| format!("\"{}\": {:.3}", json_escape(&rule.to_string()), usage[id.0]))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "{{\"name\": \"{}\", \"network_uw\": {:.6}, \"total_uw\": {:.6}, ",
            "\"track_cost_um\": {:.3}, \"skew_ps\": {:.6}, \"max_slew_ps\": {:.6}, ",
            "\"latency_ps\": {:.6}, \"meets_constraints\": {}, \"runtime_s\": {:.6}, ",
            "\"rule_histogram_um\": {{{}}}}}"
        ),
        json_escape(out.name()),
        out.power().network_uw(),
        out.power().total_uw(),
        out.power().track_cost_um(),
        out.timing().skew_ps(),
        out.timing().max_slew_ps(),
        out.timing().latency_ps(),
        out.meets_constraints(),
        out.elapsed().as_secs_f64(),
        histogram,
    )
}

/// Serializes an outcome's supervision record (budget receipts plus the
/// degradation ladder) as a JSON object. Elapsed times are deliberately
/// omitted: every field here is deterministic for a given seed and job
/// count, so callers can diff the whole object across runs.
fn supervision_json(out: &Outcome, mc_cancelled: bool) -> String {
    let budgets = out
        .budget_reports()
        .iter()
        .map(|b| {
            format!(
                "{{\"phase\": \"{}\", \"iterations\": {}, \"exhausted\": {}}}",
                json_escape(b.phase),
                b.iterations_done,
                b.exhausted
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let rungs = out
        .degradations()
        .iter()
        .map(|d| {
            format!(
                "{{\"rung\": \"{}\", \"detail\": \"{}\"}}",
                json_escape(d.rung()),
                json_escape(&d.detail())
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "{{\"budget_exhausted\": {}, \"mc_cancelled\": {}, ",
            "\"budgets\": [{}], \"degradations\": [{}]}}"
        ),
        out.budget_exhausted(),
        mc_cancelled,
        budgets,
        rungs,
    )
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let design = design_of(flags)?;
    let tech = tech_of(flags)?;
    let slew_margin: f64 = get_parsed(flags, "slew-margin", 1.10)?;
    let skew_budget: f64 = get_parsed(flags, "skew-budget", 30.0)?;
    let jobs = jobs_of(flags)?;
    let json = flags.contains_key("json");

    if !json {
        println!("design: {design}");
    }
    let tree = synthesize(&design, &tech, &CtsOptions::default())
        .map_err(|e| CliError::infeasible(e.to_string()))?;
    if !json {
        println!("tree:   {}", tree.stats());
    }

    let ctx = OptContext::new(&tree, &tech, PowerModel::new(design.freq_ghz()))
        .with_constraints(Constraints::relative(&tree, &tech, slew_margin, skew_budget));
    if !json {
        println!("constraints: {}", ctx.constraints());
    }

    let (budget, token) = budget_of(flags)?;
    let par = jobs.unwrap_or_else(Parallelism::serial);
    let method: Box<dyn NdrOptimizer> =
        match flags.get("method").map(String::as_str).unwrap_or("smart") {
            "smart" => Box::new(SmartNdr::default().with_budget(budget).with_parallelism(par)),
            "greedy" => {
                Box::new(GreedyDowngrade::default().with_budget(budget).with_parallelism(par))
            }
            "upgrade" => {
                Box::new(GreedyUpgradeRepair::default().with_budget(budget).with_parallelism(par))
            }
            "level" => Box::new(LevelBased),
            "uniform" => Box::new(Uniform::conservative()),
            "anneal" => Box::new(Annealing::new(20_000, 1).with_budget(budget)),
            "lagrangian" => Box::new(Lagrangian::new().with_budget(budget)),
            other => return Err(CliError::usage(format!("unknown --method {other:?}"))),
        };

    let base = ctx.conservative_baseline();
    let out = method.optimize(&ctx);
    if !json {
        println!("\nbaseline: {base}");
        println!("result:   {out}");
        println!(
            "saving:   {:.1}% of clock-network power, {:.1}% of track cost",
            100.0 * out.network_saving_vs(&base),
            100.0 * (1.0 - out.power().track_cost_um() / base.power().track_cost_um()),
        );
        for b in out.budget_reports().iter().filter(|b| b.exhausted) {
            println!(
                "budget:   {} exhausted after {} iterations — result is best-so-far",
                b.phase, b.iterations_done
            );
        }
        for d in out.degradations() {
            println!("degraded: {d}");
        }
    }

    let mc_samples: usize = get_parsed(flags, "mc", 0)?;
    let mut sigma_skews: Option<(f64, f64)> = None;
    let mut mc_cancelled = false;
    if mc_samples > 0 {
        let mut mc = MonteCarlo::new(VariationModel::default(), mc_samples, 7);
        if let Some(par) = jobs {
            mc = mc.with_parallelism(par);
        }
        // A panicking sample worker surfaces here after every worker has
        // joined; map it to the typed infeasible error so the CLI exits 4
        // instead of aborting. Results are bit-identical per --jobs anyway,
        // so --jobs 1 reproduces the failure serially.
        let mc_token = token.clone().unwrap_or_default();
        let reps = catch_unwind(AssertUnwindSafe(|| -> Result<_, Cancelled> {
            Ok((
                mc.run_with_token(&tree, &tech, base.assignment(), &mc_token)?,
                mc.run_with_token(&tree, &tech, out.assignment(), &mc_token)?,
            ))
        }))
        .map_err(|payload| {
            CliError::infeasible(format!(
                "Monte Carlo analysis panicked on {}: {} (re-run with --jobs 1 to localize)",
                design.name(),
                panic_message(&*payload, 120),
            ))
        })?;
        match reps {
            Ok((rep_base, rep_out)) => {
                sigma_skews = Some((rep_base.sigma_skew_ps(), rep_out.sigma_skew_ps()));
                if !json {
                    println!(
                        "variation ({mc_samples} samples): σ-skew baseline {:.2} ps, result {:.2} ps",
                        rep_base.sigma_skew_ps(),
                        rep_out.sigma_skew_ps()
                    );
                }
            }
            // The deadline fired mid-analysis. Partial statistics would
            // silently change the reported distribution, so the variation
            // section is dropped rather than degraded.
            Err(Cancelled) => {
                mc_cancelled = true;
                if !json {
                    println!("variation: cancelled by --timeout before {mc_samples} samples completed");
                }
            }
        }
    }

    if let Some(path) = flags.get("save-asg") {
        let file = fs::File::create(path)
            .map_err(|e| CliError::invalid(format!("cannot create {path}: {e}")))?;
        save_assignment(out.assignment(), &tree, file)
            .map_err(|e| CliError::invalid(e.to_string()))?;
        if !json {
            println!("wrote {path}");
        }
    }

    if let Some(path) = flags.get("svg") {
        let svg = render_svg(&tree, tech.rules(), out.assignment(), &SvgOptions::default());
        fs::write(path, svg).map_err(|e| CliError::invalid(format!("cannot write {path}: {e}")))?;
        if !json {
            println!("wrote {path}");
        }
    }

    if json {
        let variation = match sigma_skews {
            Some((b, r)) => format!(
                ", \"variation\": {{\"samples\": {mc_samples}, \"sigma_skew_baseline_ps\": {b:.6}, \"sigma_skew_result_ps\": {r:.6}}}"
            ),
            None => String::new(),
        };
        println!(
            concat!(
                "{{\"design\": {{\"name\": \"{}\", \"sinks\": {}, \"freq_ghz\": {}}}, ",
                "\"tech\": \"{}\", ",
                "\"constraints\": {{\"slew_limit_ps\": {:.6}, \"skew_limit_ps\": {:.6}}}, ",
                "\"baseline\": {}, \"result\": {}, ",
                "\"saving\": {{\"network_frac\": {:.6}, \"track_frac\": {:.6}}}, ",
                "\"supervision\": {}{}}}"
            ),
            json_escape(design.name()),
            design.sinks().len(),
            design.freq_ghz(),
            json_escape(tech.name()),
            ctx.constraints().slew_limit_ps(),
            ctx.constraints().skew_limit_ps(),
            outcome_json(&base, &tree, &tech),
            outcome_json(&out, &tree, &tech),
            out.network_saving_vs(&base),
            1.0 - out.power().track_cost_um() / base.power().track_cost_um(),
            supervision_json(&out, mc_cancelled),
            variation,
        );
    }
    Ok(())
}

/// `smart-ndr lint`: validate (and optionally repair) a `.sndr` design
/// without running the flow. Every diagnostic and every repair action is
/// printed; a feasibility smoke-check (can the default CTS flow synthesize
/// the design at all?) separates "invalid input" from "infeasible".
fn cmd_lint(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let path = flags
        .get("design")
        .ok_or_else(|| CliError::usage("lint needs --design <FILE>"))?;
    let tech = tech_of(flags)?;
    let json = flags.contains_key("json");
    let repair = flags.contains_key("repair");

    let file =
        fs::File::open(path).map_err(|e| CliError::invalid(format!("cannot open {path}: {e}")))?;
    let opts = LoadOptions {
        bounds: Bounds::for_tech(&tech),
        repair,
    };
    let report = load_design_with(BufReader::new(file), &opts).map_err(|e| {
        // Surface the individual diagnostics before failing, so the user
        // sees every problem at once instead of the first.
        if !json {
            for d in e.diagnostics() {
                println!("{d}");
            }
        }
        let hint = match e.kind() {
            ErrorKind::Parse => " (syntax error; run with a valid .sndr file)",
            _ if !e.diagnostics().is_empty() => " (re-run with --repair to attempt salvage)",
            _ => "",
        };
        CliError::invalid(format!("{e}{hint}"))
    })?;

    if !json {
        for d in &report.diagnostics {
            println!("{d}");
        }
        for r in &report.repairs {
            println!("{r}");
        }
    }

    // Feasibility smoke-check: a structurally valid design that no buffer in
    // the library can drive is a constraint problem, not an input problem.
    synthesize(&report.design, &tech, &CtsOptions::default())
        .map_err(|e| CliError::infeasible(format!("{}: {e}", report.design.name())))?;

    if let Some(out) = flags.get("out") {
        let file = fs::File::create(out)
            .map_err(|e| CliError::invalid(format!("cannot create {out}: {e}")))?;
        save_design(&report.design, file).map_err(|e| CliError::invalid(e.to_string()))?;
    }

    let status = if report.repairs.is_empty() { "clean" } else { "repaired" };
    if json {
        let list = |items: &[String]| {
            items
                .iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let diags: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        let repairs: Vec<String> = report.repairs.iter().map(|r| r.to_string()).collect();
        println!(
            "{{\"design\": \"{}\", \"status\": \"{}\", \"diagnostics\": [{}], \"repairs\": [{}]}}",
            json_escape(report.design.name()),
            status,
            list(&diags),
            list(&repairs),
        );
    } else {
        println!(
            "{}: {} ({} diagnostics, {} repairs)",
            report.design.name(),
            status,
            report.diagnostics.len(),
            report.repairs.len(),
        );
    }
    Ok(())
}

fn cmd_mesh(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use smart_ndr::mesh::{ClockMesh, MeshSpec};
    use smart_ndr::tech::Rule;

    let design = design_of(flags)?;
    let tech = tech_of(flags)?;
    let grid: usize = get_parsed(flags, "grid", 16)?;
    let drivers: usize = get_parsed(flags, "drivers", 3)?;
    let rule = match flags.get("rule").map(String::as_str).unwrap_or("default") {
        "default" => Rule::DEFAULT,
        "2w2s" => Rule::new(2.0, 2.0).expect("2W2S is valid"),
        other => return Err(CliError::usage(format!("unknown --rule {other:?} (default|2w2s)"))),
    };

    println!("design: {design}");
    let tree = synthesize(&design, &tech, &CtsOptions::default())
        .map_err(|e| CliError::infeasible(e.to_string()))?;
    let ctx = OptContext::new(&tree, &tech, PowerModel::new(design.freq_ghz()));
    let smart = SmartNdr::default().optimize(&ctx);
    println!("tree:   {smart}");

    let spec = MeshSpec::new(grid, grid, drivers, rule).map_err(|e| CliError::usage(e.to_string()))?;
    let mesh = ClockMesh::build(&design, &tech, spec);
    let rep = mesh.analyze(&tech, design.freq_ghz());
    println!("{rep} ({} drivers)", rep.n_drivers);
    println!(
        "mesh / tree network power: {:.2}x",
        rep.network_uw() / smart.power().network_uw()
    );
    Ok(())
}

/// One suite entry: either a loaded design or a load failure to report as a
/// `FAILED` row.
enum SuiteEntry {
    Design(Box<Design>),
    Unloadable { name: String, reason: String },
}

/// Designs for `cmd_suite`: the built-in 8-design suite, or every `.sndr`
/// file in `--designs <DIR>` (sorted by name for a stable table order).
fn suite_entries(flags: &HashMap<String, String>) -> Result<Vec<SuiteEntry>, CliError> {
    let Some(dir) = flags.get("designs") else {
        return Ok(ispd_like_suite()
            .into_iter()
            .map(|d| SuiteEntry::Design(Box::new(d)))
            .collect());
    };
    let mut paths: Vec<std::path::PathBuf> = fs::read_dir(dir)
        .map_err(|e| CliError::invalid(format!("cannot read {dir}: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "sndr"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::invalid(format!("no .sndr files in {dir}")));
    }
    Ok(paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.display().to_string());
            let load = fs::File::open(&p)
                .map_err(|e| format!("cannot open {}: {e}", p.display()))
                .and_then(|f| load_design(BufReader::new(f)).map_err(|e| e.to_string()));
            match load {
                Ok(d) => SuiteEntry::Design(Box::new(d)),
                Err(reason) => SuiteEntry::Unloadable { name, reason },
            }
        })
        .collect())
}

/// One evaluated suite row: an optional stderr diagnostic, the
/// deterministic table columns (runtime excluded), the measured runtime
/// (absent for rows restored from a journal), and the FAILED verdict.
#[derive(Clone)]
struct SuiteRow {
    diagnostic: Option<String>,
    name: String,
    line: String,
    runtime_s: Option<f64>,
    failed: bool,
}

impl SuiteRow {
    /// The stdout rendering: deterministic columns plus the wall-clock
    /// runtime column (`-` for FAILED rows and rows resumed from a journal,
    /// whose runtime was not re-measured).
    fn stdout_line(&self) -> String {
        match self.runtime_s {
            Some(rt) => format!("{} {rt:>8.1}s", self.line),
            None => format!("{} {:>9}", self.line, "-"),
        }
    }
}

/// Collapses `s` to one whitespace-normalized reason token stream of at
/// most `max` chars (`-` when empty), so it fits a single table column.
fn reason_cell(s: &str, max: usize) -> String {
    let mut out = s.split_whitespace().collect::<Vec<_>>().join(" ");
    if out.is_empty() {
        out.push('-');
    }
    if out.chars().count() > max {
        out = out.chars().take(max.saturating_sub(1)).collect();
        out.push('…');
    }
    out
}

/// The deterministic columns of a row whose flow did not finish, with the
/// failure reason in the reason column.
fn failed_line(name: &str, sinks: &str, reason: &str) -> String {
    format!("{name:<8} {sinks:>8} {:>12} {:>12} {:>8} {:<8}", "FAILED", "-", "-", reason)
}

/// Evaluates one suite entry. Runs on a worker thread under `--jobs`; the
/// whole flow sits inside `catch_unwind` so a poisoned design (bad file,
/// synthesis failure, even a panic in the flow) becomes a `FAILED` row —
/// carrying the truncated panic message in its reason column — instead of
/// taking down the run. Degradation-ladder rungs taken by a successful run
/// surface in the same column as `degraded:<rung,...>`.
fn suite_row(entry: &SuiteEntry, tech: &Technology) -> SuiteRow {
    let design = match entry {
        SuiteEntry::Design(d) => d,
        SuiteEntry::Unloadable { name, reason } => {
            return SuiteRow {
                diagnostic: Some(format!("{name}: {reason}")),
                name: name.clone(),
                line: failed_line(name, "-", &reason_cell(reason, 60)),
                runtime_s: None,
                failed: true,
            }
        }
    };
    let row = catch_unwind(AssertUnwindSafe(|| -> Result<(String, f64), String> {
        let tree = synthesize(design, tech, &CtsOptions::default()).map_err(|e| e.to_string())?;
        let ctx = OptContext::new(&tree, tech, PowerModel::new(design.freq_ghz()));
        let base = ctx.conservative_baseline();
        let out = SmartNdr::default().optimize(&ctx);
        let mut rungs: Vec<&str> = Vec::new();
        for d in out.degradations() {
            if !rungs.contains(&d.rung()) {
                rungs.push(d.rung());
            }
        }
        let reason = if rungs.is_empty() {
            "-".to_owned()
        } else {
            format!("degraded:{}", rungs.join(","))
        };
        Ok((
            format!(
                "{:<8} {:>8} {:>12.1} {:>12.1} {:>7.1}% {:<8}",
                design.name(),
                design.sinks().len(),
                base.power().network_uw(),
                out.power().network_uw(),
                100.0 * out.network_saving_vs(&base),
                reason,
            ),
            out.elapsed().as_secs_f64(),
        ))
    }));
    let name = design.name().to_owned();
    let sinks = design.sinks().len().to_string();
    match row {
        Ok(Ok((line, rt))) => {
            SuiteRow { diagnostic: None, name, line, runtime_s: Some(rt), failed: false }
        }
        Ok(Err(reason)) => SuiteRow {
            diagnostic: Some(format!("{name}: {reason}")),
            line: failed_line(&name, &sinks, &reason_cell(&reason, 60)),
            name,
            runtime_s: None,
            failed: true,
        },
        Err(panic) => {
            let reason = panic_message(&*panic, 60);
            SuiteRow {
                diagnostic: Some(format!("{name}: panicked: {reason}")),
                line: failed_line(&name, &sinks, &reason),
                name,
                runtime_s: None,
                failed: true,
            }
        }
    }
}

/// The journal path for a `suite --out` file: `<out>.journal.jsonl`.
fn journal_path(out: &Path) -> PathBuf {
    let mut os = out.as_os_str().to_owned();
    os.push(".journal.jsonl");
    PathBuf::from(os)
}

/// One journal line for a completed row: flat JSON with the fields needed
/// to reproduce the row byte-identically on `--resume`.
fn journal_record(row: &SuiteRow) -> String {
    format!(
        "{{\"name\": \"{}\", \"failed\": {}, \"line\": \"{}\", \"diag\": \"{}\"}}",
        json_escape(&row.name),
        row.failed,
        json_escape(&row.line),
        json_escape(row.diagnostic.as_deref().unwrap_or("")),
    )
}

/// Extracts and unescapes the string value of `key` from a flat one-line
/// JSON object written by [`journal_record`]. `None` on malformed input.
fn json_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

/// Parses one journal line back into a (resumed) row. Malformed lines
/// return `None` and the design is simply re-evaluated.
fn journal_row(line: &str) -> Option<SuiteRow> {
    let name = json_field(line, "name")?;
    let row_line = json_field(line, "line")?;
    let diag = json_field(line, "diag")?;
    Some(SuiteRow {
        diagnostic: (!diag.is_empty()).then_some(diag),
        name,
        line: row_line,
        runtime_s: None,
        failed: line.contains("\"failed\": true"),
    })
}

/// `smart-ndr suite`: the headline table. Robust by construction — every
/// design runs inside `catch_unwind` (see [`suite_row`]), so one poisoned
/// design yields a `FAILED` row and the run continues with the remaining
/// designs. With `--jobs <N>` the designs evaluate on `N` worker threads;
/// rows always print in suite order, so the table is byte-identical for any
/// job count. Always exits 0 when the table itself could be produced.
///
/// With `--out <FILE>` the deterministic columns (runtime excluded) are
/// additionally written to `FILE` through [`atomic_write`], and every
/// completed row is journaled to `<FILE>.journal.jsonl` as it finishes;
/// `--resume` restores journaled rows instead of re-evaluating them, so an
/// interrupted run picks up where it stopped and still produces the
/// byte-identical `FILE`. The journal is deleted once `FILE` lands.
fn cmd_suite(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let tech = tech_of(flags)?;
    let par = jobs_of(flags)?.unwrap_or_else(Parallelism::serial);
    let out_path = flags.get("out").map(PathBuf::from);
    let resume = flags.contains_key("resume");
    if resume && out_path.is_none() {
        return Err(CliError::usage("suite --resume needs --out <FILE> (the journal lives next to it)"));
    }
    let entries = suite_entries(flags)?;

    // Rows completed by an earlier interrupted run, keyed by design name.
    let mut done: HashMap<String, SuiteRow> = HashMap::new();
    let journal = match &out_path {
        None => None,
        Some(out) => {
            let jpath = journal_path(out);
            let j = if resume {
                let (j, lines) = Journal::resume(&jpath).map_err(|e| {
                    CliError::invalid(format!("cannot resume journal {}: {e}", jpath.display()))
                })?;
                for row in lines.iter().filter_map(|l| journal_row(l)) {
                    done.insert(row.name.clone(), row);
                }
                j
            } else {
                // A fresh run must not inherit rows from an older one.
                match fs::remove_file(&jpath) {
                    Err(e) if e.kind() != std::io::ErrorKind::NotFound => {
                        return Err(CliError::invalid(format!(
                            "cannot clear stale journal {}: {e}",
                            jpath.display()
                        )));
                    }
                    _ => {}
                }
                Journal::open(&jpath).map_err(|e| {
                    CliError::invalid(format!("cannot open journal {}: {e}", jpath.display()))
                })?
            };
            Some(Mutex::new(j))
        }
    };

    let header = format!(
        "{:<8} {:>8} {:>12} {:>12} {:>8} {:<8} {:>9}",
        "design", "sinks", "2w2s µW", "smart µW", "save", "reason", "runtime"
    );
    println!("{header}");
    let done = &done;
    let journal_ref = journal.as_ref();
    let rows = par_map(par, &entries, |_, entry| {
        let name = match entry {
            SuiteEntry::Design(d) => d.name(),
            SuiteEntry::Unloadable { name, .. } => name,
        };
        if let Some(row) = done.get(name) {
            return row.clone();
        }
        let row = suite_row(entry, &tech);
        if let Some(j) = journal_ref {
            let record = journal_record(&row);
            // A journaling failure must not fail the run — the table is
            // still produced; only resumability is lost.
            match j.lock() {
                Ok(mut j) => {
                    if let Err(e) = j.append(&record) {
                        eprintln!("warning: cannot journal row {}: {e}", row.name);
                    }
                }
                Err(poisoned) => drop(poisoned),
            }
        }
        row
    });
    for row in &rows {
        if let Some(diag) = &row.diagnostic {
            eprintln!("{diag}");
        }
        println!("{}", row.stdout_line());
    }
    let failed = rows.iter().filter(|r| r.failed).count();
    let mut tail = String::new();
    if failed > 0 {
        tail = format!("{failed} of {} designs FAILED", entries.len());
        println!("{tail}");
    }

    if let Some(out) = &out_path {
        // The artifact keeps only deterministic columns, so a resumed run
        // reproduces it byte-for-byte.
        let det_header = format!(
            "{:<8} {:>8} {:>12} {:>12} {:>8} {:<8}",
            "design", "sinks", "2w2s µW", "smart µW", "save", "reason"
        );
        let mut text = String::new();
        text.push_str(det_header.trim_end());
        text.push('\n');
        for row in &rows {
            text.push_str(row.line.trim_end());
            text.push('\n');
        }
        if !tail.is_empty() {
            text.push_str(&tail);
            text.push('\n');
        }
        atomic_write(out, text.as_bytes())
            .map_err(|e| CliError::invalid(format!("cannot write {}: {e}", out.display())))?;
        if let Some(j) = journal {
            let j = j.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Err(e) = j.remove() {
                eprintln!("warning: cannot remove journal: {e}");
            }
        }
    }
    Ok(())
}
