//! # smart-ndr
//!
//! A from-scratch reproduction of *Smart non-default routing for clock
//! power reduction* (Kahng, Kang, Lee — DAC 2013): per-edge assignment of
//! non-default routing rules (NDRs) on buffered clock trees to minimize
//! clock power under slew, skew and variation-robustness constraints —
//! together with every substrate the study needs (technology models,
//! benchmark generation, DME-based clock-tree synthesis, RC timing, power
//! and Monte-Carlo variation analysis).
//!
//! The member crates are re-exported here under short names; the
//! [`Flow`] type wires them into the paper's end-to-end flow.
//!
//! # Quickstart
//!
//! ```
//! use smart_ndr::{Flow, netlist::BenchmarkSpec, tech::Technology};
//!
//! let design = BenchmarkSpec::new("quick", 200).seed(42).build()?;
//! let report = Flow::new(Technology::n45()).run(&design)?;
//!
//! // Smart NDR never does worse than the uniform-2W2S baseline and stays
//! // inside the timing envelope.
//! assert!(report.smart().meets_constraints());
//! assert!(report.saving() >= 0.0);
//! println!("{}", report.summary());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use snr_core as core;
pub use snr_cts as cts;
pub use snr_geom as geom;
pub use snr_mesh as mesh;
pub use snr_netlist as netlist;
pub use snr_power as power;
pub use snr_serve as serve;
pub use snr_tech as tech;
pub use snr_timing as timing;
pub use snr_variation as variation;

use snr_core::{Constraints, NdrOptimizer, OptContext, Outcome, SmartNdr};
use snr_cts::{synthesize, ClockTree, CtsError, CtsOptions};
use snr_netlist::Design;
use snr_power::PowerModel;
use snr_tech::Technology;

/// The end-to-end smart-NDR flow: CTS → baseline → smart assignment.
///
/// Configure the technology, CTS options and constraint margins once, then
/// [`Flow::run`] any number of designs. See the crate-level example.
#[derive(Debug, Clone)]
pub struct Flow {
    tech: Technology,
    cts: CtsOptions,
    slew_margin: f64,
    skew_budget_ps: f64,
}

impl Flow {
    /// Creates a flow with the experiment defaults: default CTS options,
    /// 10 % slew margin and 30 ps skew budget over the uniform-conservative
    /// baseline.
    pub fn new(tech: Technology) -> Self {
        Flow {
            tech,
            cts: CtsOptions::default(),
            slew_margin: 1.10,
            skew_budget_ps: 30.0,
        }
    }

    /// Returns a copy with different CTS options.
    pub fn with_cts_options(mut self, cts: CtsOptions) -> Self {
        self.cts = cts;
        self
    }

    /// Returns a copy with a different slew margin (≥ 1) over the baseline.
    ///
    /// # Panics
    ///
    /// Panics if `margin < 1`.
    pub fn with_slew_margin(mut self, margin: f64) -> Self {
        assert!(margin.is_finite() && margin >= 1.0, "margin {margin} must be >= 1");
        self.slew_margin = margin;
        self
    }

    /// Returns a copy with a different absolute skew budget in ps.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive.
    pub fn with_skew_budget_ps(mut self, budget: f64) -> Self {
        assert!(budget.is_finite() && budget > 0.0, "budget {budget} must be positive");
        self.skew_budget_ps = budget;
        self
    }

    /// The configured technology.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// Runs the flow on `design`.
    ///
    /// # Errors
    ///
    /// Returns [`CtsError`] when clock-tree synthesis fails (see
    /// [`snr_cts::synthesize`]).
    pub fn run(&self, design: &Design) -> Result<FlowReport, CtsError> {
        let tree = synthesize(design, &self.tech, &self.cts)?;
        let ctx = OptContext::new(&tree, &self.tech, PowerModel::new(design.freq_ghz()))
            .with_constraints(Constraints::relative(
                &tree,
                &self.tech,
                self.slew_margin,
                self.skew_budget_ps,
            ));
        let baseline = ctx.conservative_baseline();
        let smart = SmartNdr::default().optimize(&ctx);
        Ok(FlowReport {
            design_name: design.name().to_owned(),
            tree,
            baseline,
            smart,
        })
    }
}

/// The result of one [`Flow::run`].
#[derive(Debug, Clone)]
pub struct FlowReport {
    design_name: String,
    tree: ClockTree,
    baseline: Outcome,
    smart: Outcome,
}

impl FlowReport {
    /// The design this report describes.
    pub fn design_name(&self) -> &str {
        &self.design_name
    }

    /// The synthesized clock tree.
    pub fn tree(&self) -> &ClockTree {
        &self.tree
    }

    /// The uniform-conservative (industrial) baseline.
    pub fn baseline(&self) -> &Outcome {
        &self.baseline
    }

    /// The smart-NDR result.
    pub fn smart(&self) -> &Outcome {
        &self.smart
    }

    /// Network-power saving of smart over the baseline (fraction).
    pub fn saving(&self) -> f64 {
        self.smart.network_saving_vs(&self.baseline)
    }

    /// A multi-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {}\n  baseline  {}\n  smart     {}\n  saving    {:.1}% of network power",
            self.design_name,
            self.tree.stats(),
            self.baseline,
            self.smart,
            100.0 * self.saving(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snr_netlist::BenchmarkSpec;

    #[test]
    fn flow_end_to_end() {
        let design = BenchmarkSpec::new("t", 80).seed(1).build().unwrap();
        let report = Flow::new(Technology::n45()).run(&design).unwrap();
        assert!(report.smart().meets_constraints());
        assert!(report.saving() > 0.0);
        assert!(report.summary().contains("saving"));
        assert_eq!(report.design_name(), "t");
        assert_eq!(report.tree().sink_nodes().len(), 80);
    }

    #[test]
    fn builder_validation() {
        let flow = Flow::new(Technology::n45())
            .with_slew_margin(1.2)
            .with_skew_budget_ps(50.0);
        assert_eq!(flow.tech().name(), "N45");
        assert!(std::panic::catch_unwind(|| Flow::new(Technology::n45())
            .with_slew_margin(0.9))
        .is_err());
    }
}
