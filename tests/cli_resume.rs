//! Kill-and-resume proof for `smart-ndr suite --resume` (ISSUE 5
//! acceptance): journaled rows are restored instead of re-evaluated, the
//! resumed `--out` artifact is byte-identical to an uninterrupted run, and
//! the journal/temp files never outlive a successful run.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smart-ndr"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("smart-ndr-resume-{}-{name}", std::process::id()));
    p
}

fn journal_of(out: &Path) -> PathBuf {
    let mut os = out.as_os_str().to_owned();
    os.push(".journal.jsonl");
    PathBuf::from(os)
}

fn temp_of(out: &Path) -> PathBuf {
    let mut os = out.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Three healthy designs with distinct sink counts (names stay unique).
fn pool(tag: &str) -> PathBuf {
    let dir = tmp(tag);
    std::fs::create_dir_all(&dir).expect("create pool dir");
    for (file, sinks, seed) in [("a.sndr", "24", "1"), ("m.sndr", "28", "2"), ("z.sndr", "32", "3")]
    {
        let out = bin()
            .args(["gen", "--sinks", sinks, "--seed", seed, "--out"])
            .arg(dir.join(file))
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    dir
}

fn run_suite(dir: &Path, out_file: &Path, resume: bool) -> std::process::Output {
    let mut cmd = bin();
    cmd.args(["suite", "--jobs", "2", "--designs"]).arg(dir).arg("--out").arg(out_file);
    if resume {
        cmd.arg("--resume");
    }
    cmd.output().expect("binary runs")
}

#[test]
fn resume_reproduces_byte_identical_artifact_and_skips_journaled_rows() {
    let dir = pool("pool-a");
    let out_a = tmp("a.txt");
    let out_b = tmp("b.txt");

    // Uninterrupted reference run.
    let out = run_suite(&dir, &out_a, false);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let reference = std::fs::read(&out_a).expect("artifact written");
    assert!(!journal_of(&out_a).exists(), "journal must be deleted after success");
    assert!(!temp_of(&out_a).exists(), "no temp file after an atomic write");

    // Simulate an interrupted run that completed exactly one row: its
    // journal holds the true record for the middle design.
    let text = String::from_utf8_lossy(&reference).to_string();
    let row = text
        .lines()
        .find(|l| l.starts_with("cli-s28"))
        .expect("row for the 28-sink design in the artifact");
    std::fs::write(
        journal_of(&out_b),
        format!("{{\"name\": \"cli-s28\", \"failed\": false, \"line\": \"{row}\", \"diag\": \"\"}}\n"),
    )
    .expect("craft journal");

    let out = run_suite(&dir, &out_b, true);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let resumed = std::fs::read(&out_b).expect("resumed artifact written");
    assert_eq!(
        resumed, reference,
        "resumed artifact must be byte-identical to the uninterrupted run"
    );
    // The restored row carries no runtime measurement on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().find(|l| l.starts_with("cli-s28")).expect("resumed row printed");
    assert_eq!(line.split_whitespace().last(), Some("-"), "resumed row has no runtime: {line}");
    assert!(!journal_of(&out_b).exists(), "journal must be deleted after success");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&out_a);
    let _ = std::fs::remove_file(&out_b);
}

#[test]
fn resume_trusts_the_journal_instead_of_reevaluating() {
    let dir = pool("pool-b");
    let out_c = tmp("c.txt");
    // A sentinel row no real evaluation could ever produce: if it appears
    // in the output, the design was *not* re-run.
    std::fs::write(
        journal_of(&out_c),
        "{\"name\": \"cli-s28\", \"failed\": false, \"line\": \"SENTINEL-ROW cli-s28\", \"diag\": \"\"}\n",
    )
    .expect("craft journal");

    let out = run_suite(&dir, &out_c, true);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("SENTINEL-ROW"),
        "journaled row must be restored, not re-evaluated"
    );
    let artifact = std::fs::read_to_string(&out_c).expect("artifact written");
    assert!(artifact.contains("SENTINEL-ROW cli-s28"), "restored row lands in the artifact");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&out_c);
}

#[test]
fn fresh_run_clears_a_stale_journal() {
    let dir = pool("pool-c");
    let out_d = tmp("d.txt");
    std::fs::write(
        journal_of(&out_d),
        "{\"name\": \"cli-s28\", \"failed\": false, \"line\": \"SENTINEL-ROW stale\", \"diag\": \"\"}\n",
    )
    .expect("craft stale journal");

    // Without --resume the stale journal must be discarded, not replayed.
    let out = run_suite(&dir, &out_d, false);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(!String::from_utf8_lossy(&out.stdout).contains("SENTINEL-ROW"));
    assert!(!std::fs::read_to_string(&out_d).expect("artifact").contains("SENTINEL-ROW"));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&out_d);
}

#[test]
fn resume_without_out_is_a_usage_error() {
    let dir = pool("pool-d");
    let out = bin()
        .args(["suite", "--resume", "--designs"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "usage errors exit 1");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--out"),
        "error must point at the missing --out"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
