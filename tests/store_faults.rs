//! Seeded store-corruption soak (ISSUE 7 acceptance): every
//! [`StoreFault`] category — bit flips, torn truncations, stale version
//! headers, partial temp files — injected into a real store directory and
//! driven through the full plan→execute path. The invariants, per seed:
//! zero panics, never a stale or wrong response, every corrupted entry
//! quarantined to `corrupt/` with the degradation recorded, and the slot
//! healed by the clean recompute.
//!
//! Uses the `fault-inject` hooks the root dev-dependency enables.

use std::path::PathBuf;
use std::sync::Mutex;

use snr_serve::render::run_json;
use snr_serve::{
    corrupt_entry, execute, plan, DesignSource, Event, ExecCtx, Lookup, Plan, Request, Response,
    ResultStore, RunRequest, StoreFault, StoreKind,
};

const SEEDS_PER_FAULT: u64 = 8;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("smart-ndr-storefaults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn request(sinks: usize, seed: u64) -> Request {
    Request::Run(RunRequest::new(DesignSource::Generate { sinks, seed, freq_ghz: 1.0 }))
}

/// Replaces every measured `"runtime_s"` value with `X`; all other fields
/// stay byte-exact.
fn normalize_runtime(s: &str) -> String {
    const KEY: &str = "\"runtime_s\": ";
    let mut out = String::new();
    let mut rest = s;
    while let Some(i) = rest.find(KEY) {
        let start = i + KEY.len();
        out.push_str(&rest[..start]);
        out.push('X');
        let tail = &rest[start..];
        let end = tail.find([',', '}']).expect("runtime_s value is delimited");
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Removes the quarantine rung from the degradations array, so a
/// recompute (which records it) can be compared against its clean cold
/// run (which has none). Everything else must match byte-for-byte.
fn strip_quarantine(s: &str) -> String {
    match s.find("{\"rung\": \"cache_entry_quarantined\"") {
        None => s.to_owned(),
        Some(i) => {
            let end = i + s[i..].find('}').expect("rung object closes") + 1;
            format!("{}{}", &s[..i], &s[end..])
        }
    }
}

/// Runs `req` against `store`, returning the rendered result JSON, the
/// quarantine events that fired, and whether this was a disk replay.
fn run_stored(store: &ResultStore, req: &Request) -> (String, Vec<String>, bool) {
    let events: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let sink = |e: &Event| {
        if let Event::StoreQuarantined { detail, .. } = e {
            events.lock().expect("events lock").push(detail.clone());
        }
    };
    let ctx = ExecCtx { cache: None, store: Some(store), sink: Some(&sink), on_token: None };
    let plan = plan(req).expect("plan");
    let (json, replayed) = match execute(&plan, &ctx).expect("execute never errors here") {
        Response::Run(resp) => (run_json(&resp), false),
        Response::Replayed(r) => (r.run_json.clone(), true),
        other => panic!("unexpected response {other:?}"),
    };
    (json, events.into_inner().expect("events lock"), replayed)
}

fn result_key(req: &Request) -> snr_serve::CacheKey {
    match plan(req).expect("plan") {
        Plan::Run(p) => p.result_key,
        _ => unreachable!("run requests produce run plans"),
    }
}

#[test]
fn every_store_fault_category_quarantines_and_recomputes() {
    let dir = scratch("sweep");
    let mut case = 0u64;
    for fault in StoreFault::ALL {
        for seed in 0..SEEDS_PER_FAULT {
            case += 1;
            let root = dir.join(case.to_string());
            let store = ResultStore::open(&root).expect("open store");
            // Designs vary with the seed so keys differ across cases.
            let req = request(40 + 4 * (seed as usize % 4), 2 + seed);
            let key = result_key(&req);

            let (cold, events, replayed) = run_stored(&store, &req);
            assert!(!replayed && events.is_empty(), "{fault:?}/{seed}: cold run must compute");
            assert!(
                corrupt_entry(&store, StoreKind::Run, key, fault, seed).expect("inject"),
                "{fault:?}/{seed}: there must be an entry to corrupt"
            );

            let (second, events, replayed) = run_stored(&store, &req);
            if fault == StoreFault::PartialTmp {
                // Debris beside the entry must not affect the entry: this
                // is a clean replay of the cold run's exact bytes.
                assert!(replayed, "{fault:?}/{seed}: entry intact, must replay");
                assert_eq!(second, cold, "{fault:?}/{seed}: replay must be byte-identical");
                assert!(events.is_empty(), "{fault:?}/{seed}: no quarantine for debris");
                continue;
            }
            // Corrupted entry: recomputed, never replayed, never wrong.
            assert!(!replayed, "{fault:?}/{seed}: corruption must force a recompute");
            assert_eq!(
                events.len(),
                1,
                "{fault:?}/{seed}: exactly one quarantine event, got {events:?}"
            );
            assert!(
                second.contains("cache_entry_quarantined"),
                "{fault:?}/{seed}: the degradation must surface in the JSON supervision"
            );
            assert_eq!(
                normalize_runtime(&strip_quarantine(&second)),
                normalize_runtime(&cold),
                "{fault:?}/{seed}: recompute must reproduce the cold result"
            );
            let corpses = std::fs::read_dir(store.corrupt_dir())
                .map(|rd| rd.count())
                .unwrap_or(0);
            assert_eq!(corpses, 1, "{fault:?}/{seed}: evidence must land in corrupt/");

            // The recompute healed the slot: the next lookup is a verified
            // hit whose bytes replay the *recompute* (no quarantine rung).
            match store.load(StoreKind::Run, key) {
                Lookup::Hit(_) => {}
                other => panic!("{fault:?}/{seed}: slot not healed: {other:?}"),
            }
            let (third, events, replayed) = run_stored(&store, &req);
            assert!(replayed && events.is_empty(), "{fault:?}/{seed}: healed slot must replay");
            assert!(
                !third.contains("cache_entry_quarantined"),
                "{fault:?}/{seed}: stored bytes must never carry the quarantine rung"
            );
            assert_eq!(normalize_runtime(&third), normalize_runtime(&cold));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Stacked corruption: every category injected in sequence against the
/// same slot, with a full flow between each. The store must keep
/// converging back to a healthy replaying state.
#[test]
fn repeated_corruption_keeps_healing() {
    let dir = scratch("repeat");
    let store = ResultStore::open(&dir).expect("open store");
    let req = request(48, 11);
    let key = result_key(&req);
    let (cold, _, _) = run_stored(&store, &req);
    for (round, fault) in StoreFault::ALL.into_iter().cycle().take(12).enumerate() {
        corrupt_entry(&store, StoreKind::Run, key, fault, round as u64).expect("inject");
        let (json, _, _) = run_stored(&store, &req);
        assert_eq!(
            normalize_runtime(&strip_quarantine(&json)),
            normalize_runtime(&cold),
            "round {round} ({fault:?}): result drifted"
        );
    }
    // After the dust settles the slot replays cleanly.
    let (fin, events, replayed) = run_stored(&store, &req);
    assert!(replayed && events.is_empty(), "final lookup must be a clean replay");
    assert_eq!(normalize_runtime(&fin), normalize_runtime(&cold));
    let _ = std::fs::remove_dir_all(&dir);
}
