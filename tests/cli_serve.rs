//! End-to-end tests of `smart-ndr serve`: the resident daemon driven over
//! stdin/stdout exactly as a client would drive it.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

struct Daemon {
    child: Child,
    stdin: Option<ChildStdin>,
    reader: BufReader<ChildStdout>,
    /// Every line read so far, for assertions over the event stream.
    transcript: Vec<String>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_smart-ndr"))
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let stdin = child.stdin.take().expect("piped stdin");
        let reader = BufReader::new(child.stdout.take().expect("piped stdout"));
        Daemon { child, stdin: Some(stdin), reader, transcript: Vec::new() }
    }

    fn send(&mut self, line: &str) {
        let stdin = self.stdin.as_mut().expect("stdin still open");
        writeln!(stdin, "{line}").expect("write to daemon");
        stdin.flush().expect("flush to daemon");
    }

    fn read_line(&mut self) -> String {
        let mut s = String::new();
        let n = self.reader.read_line(&mut s).expect("read from daemon");
        assert!(n > 0, "daemon closed stdout unexpectedly; transcript: {:#?}", self.transcript);
        let line = s.trim_end().to_owned();
        self.transcript.push(line.clone());
        line
    }

    /// Reads lines (collecting events into the transcript) until a final
    /// response line has arrived for every id in `ids`, in any order.
    fn finals_for(&mut self, ids: &[u64]) -> HashMap<u64, String> {
        let mut finals = HashMap::new();
        for _ in 0..10_000 {
            if ids.iter().all(|id| finals.contains_key(id)) {
                return finals;
            }
            let line = self.read_line();
            if line.contains("\"event\"") {
                continue;
            }
            for id in ids {
                if line.starts_with(&format!("{{\"id\": {id}, ")) {
                    finals.insert(*id, line.clone());
                }
            }
        }
        panic!("no final lines for {ids:?} after 10000 lines; transcript: {:#?}", self.transcript)
    }

    /// Closes stdin (EOF) and waits for the daemon to drain and exit.
    fn eof_and_wait(mut self) -> std::process::ExitStatus {
        drop(self.stdin.take());
        // Drain stdout so the daemon never blocks on a full pipe.
        let mut rest = String::new();
        let _ = std::io::Read::read_to_string(&mut self.reader, &mut rest);
        self.child.wait().expect("daemon exits")
    }
}

fn run_request(id: u64, sinks: usize, seed: u64, extra: &str) -> String {
    format!(
        "{{\"op\": \"run\", \"id\": {id}, \"design\": {{\"generate\": {{\"sinks\": {sinks}, \"seed\": {seed}}}}}{extra}}}"
    )
}

/// Replaces every measured `"runtime_s"` value with `X`, leaving all
/// deterministic fields intact for byte comparison.
fn normalize_runtime(s: &str) -> String {
    const KEY: &str = "\"runtime_s\": ";
    let mut out = String::new();
    let mut rest = s;
    while let Some(i) = rest.find(KEY) {
        let start = i + KEY.len();
        out.push_str(&rest[..start]);
        out.push('X');
        let tail = &rest[start..];
        let end = tail
            .find([',', '}'])
            .expect("runtime_s value is followed by , or }");
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// The acceptance pin for the warm cache: N identical `run` requests parse
/// and synthesize once; every later request is a cache hit, visible both
/// in the response envelope and in `stats`.
#[test]
fn identical_requests_share_one_parse_and_cts() {
    let mut d = Daemon::spawn(&["--jobs", "1"]);
    for id in 1..=3 {
        d.send(&run_request(id, 100, 7, ""));
    }
    let finals = d.finals_for(&[1, 2, 3]);
    assert!(finals[&1].contains("\"ok\": true") && finals[&1].contains("\"cache\": \"miss\""));
    for id in [2, 3] {
        assert!(
            finals[&id].contains("\"ok\": true") && finals[&id].contains("\"cache\": \"hit\""),
            "request {id} should hit the warm cache: {}",
            finals[&id]
        );
    }

    // All three responses arrived, so the workers are idle: stats are
    // settled and must show exactly one parse+CTS for three optimizations.
    d.send("{\"op\": \"stats\", \"id\": 9}");
    let stats = &d.finals_for(&[9])[&9];
    assert!(stats.contains("\"hits\": 2, \"misses\": 1"), "cache counters: {stats}");
    assert!(stats.contains("\"parse\": {\"count\": 1,"), "parse ran once: {stats}");
    assert!(stats.contains("\"cts\": {\"count\": 1,"), "cts ran once: {stats}");
    assert!(stats.contains("\"optimize\": {\"count\": 3,"), "optimize ran thrice: {stats}");
    assert!(stats.contains("\"received\": 3, \"completed\": 3"), "request counters: {stats}");

    // The daemon also streamed progress: intake acks and phase events.
    assert!(d.transcript.iter().any(|l| l.contains("\"event\": \"accepted\"")));
    assert!(d.transcript.iter().any(|l| l.contains("\"event\": \"phase_done\"")
        && l.contains("\"phase\": \"optimize\"")));

    let status = d.eof_and_wait();
    assert!(status.success(), "EOF must be a clean exit, got {status:?}");
}

/// Two different designs in flight at once on two workers; both succeed.
#[test]
fn concurrent_requests_complete_independently() {
    let mut d = Daemon::spawn(&["--jobs", "2"]);
    d.send(&run_request(1, 100, 1, ""));
    d.send(&run_request(2, 120, 2, ""));
    let finals = d.finals_for(&[1, 2]);
    assert!(finals[&1].contains("\"ok\": true") && finals[&1].contains("cli-s100"));
    assert!(finals[&2].contains("\"ok\": true") && finals[&2].contains("cli-s120"));
    assert!(d.eof_and_wait().success());
}

/// The acceptance pin for per-request isolation: a fault-injected request
/// that panics mid-execution yields a typed `panicked` error response
/// while its neighbor succeeds and the daemon keeps serving.
#[test]
fn poisoned_request_fails_alone_and_daemon_survives() {
    let mut d = Daemon::spawn(&["--jobs", "1"]);
    d.send(&run_request(1, 100, 7, ", \"fault\": \"panic\""));
    d.send(&run_request(2, 100, 7, ""));
    let finals = d.finals_for(&[1, 2]);
    assert!(
        finals[&1].contains("\"error\": {\"code\": \"panicked\""),
        "poisoned request must fail typed: {}",
        finals[&1]
    );
    assert!(
        finals[&2].contains("\"ok\": true"),
        "neighbor of a poisoned request must succeed: {}",
        finals[&2]
    );
    // Still alive: a control request round-trips after the panic.
    d.send("{\"op\": \"stats\", \"id\": 9}");
    assert!(d.finals_for(&[9])[&9].contains("\"panics\": 1"));
    assert!(d.eof_and_wait().success());
}

/// A request whose iteration budget expires mid-optimization still returns
/// a best-so-far result (ok, with the exhaustion receipt in supervision),
/// not an error.
#[test]
fn budget_expired_request_returns_best_so_far() {
    let mut d = Daemon::spawn(&["--jobs", "1"]);
    d.send(&run_request(1, 200, 3, ", \"max_iters\": 1"));
    let finals = d.finals_for(&[1]);
    let line = &finals[&1];
    assert!(line.contains("\"ok\": true"), "budget expiry is not an error: {line}");
    assert!(
        line.contains("\"budget_exhausted\": true") && line.contains("\"exhausted\": true"),
        "supervision must carry the exhaustion receipt: {line}"
    );
    assert!(d.eof_and_wait().success());
}

/// Malformed lines get typed error responses; well-formed neighbors on the
/// same connection still execute, and EOF still exits 0.
#[test]
fn malformed_lines_answer_typed_errors_without_killing_the_daemon() {
    let mut d = Daemon::spawn(&["--jobs", "1"]);
    d.send("this is not json");
    d.send("{\"op\": \"frobnicate\", \"id\": 8}");
    d.send("{\"op\": \"run\", \"id\": 9}"); // run without a design
    d.send(&run_request(1, 100, 7, ""));

    let garbage = d.read_line();
    assert!(
        garbage.starts_with("{\"id\": null, \"error\": {\"code\": \"usage\""),
        "unparseable line: {garbage}"
    );
    let finals = d.finals_for(&[8, 9, 1]);
    assert!(finals[&8].contains("\"error\": {\"code\": \"usage\""), "{}", finals[&8]);
    assert!(finals[&9].contains("\"error\": {\"code\": \"usage\""), "{}", finals[&9]);
    assert!(finals[&1].contains("\"ok\": true"), "{}", finals[&1]);
    assert!(d.eof_and_wait().success());
}

/// Hostile requests against the newer ops — `pareto`, `import`,
/// `export_ndr` — answer typed errors (wrong-typed fields and missing
/// design are `usage`; unreadable or oversized payloads are
/// `invalid_input`) and the worker pool survives to serve a healthy
/// request on the same connection.
#[test]
fn hostile_pareto_import_export_requests_answer_typed_errors() {
    let mut d = Daemon::spawn(&["--jobs", "1"]);
    // Wrong-typed field on pareto: scalars where arrays belong.
    d.send(
        "{\"op\": \"pareto\", \"id\": 20, \
         \"design\": {\"generate\": {\"sinks\": 40, \"seed\": 1}}, \
         \"slew_margins\": \"wide\"}",
    );
    // Import with no design at all, then with bytes that are not DEF.
    d.send("{\"op\": \"import\", \"id\": 21}");
    d.send("{\"op\": \"import\", \"id\": 22, \"design\": {\"inline\": \"not a def file\"}}");
    // Oversized inline payload: one byte past the importer's input limit.
    let oversized = "x".repeat(8 * 1024 * 1024 + 1);
    d.send(&format!(
        "{{\"op\": \"import\", \"id\": 23, \"design\": {{\"inline\": \"{oversized}\"}}}}"
    ));
    // export_ndr with an unknown method, and with a from_tcl that does
    // not exist on disk.
    d.send(
        "{\"op\": \"export_ndr\", \"id\": 24, \
         \"design\": {\"generate\": {\"sinks\": 40, \"seed\": 1}}, \
         \"method\": \"bogus\"}",
    );
    d.send(
        "{\"op\": \"export_ndr\", \"id\": 25, \
         \"design\": {\"generate\": {\"sinks\": 40, \"seed\": 1}}, \
         \"from_tcl\": \"/nonexistent/no-such.tcl\"}",
    );
    // A healthy neighbor: the daemon must still execute real work.
    d.send(
        "{\"op\": \"export_ndr\", \"id\": 1, \
         \"design\": {\"generate\": {\"sinks\": 60, \"seed\": 3}}, \
         \"method\": \"greedy\"}",
    );

    let finals = d.finals_for(&[20, 21, 22, 23, 24, 25, 1]);
    for id in [20u64, 21, 24] {
        assert!(
            finals[&id].contains("\"error\": {\"code\": \"usage\""),
            "id {id}: {}",
            finals[&id]
        );
    }
    for id in [22u64, 23, 25] {
        assert!(
            finals[&id].contains("\"error\": {\"code\": \"invalid_input\""),
            "id {id}: {}",
            finals[&id]
        );
    }
    assert!(
        finals[&23].contains("I08"),
        "oversized payload must carry the I08 limit diagnostic: {}",
        finals[&23]
    );
    assert!(finals[&1].contains("\"ok\": true"), "{}", finals[&1]);
    assert!(finals[&1].contains("\"ndr_tcl\""), "{}", finals[&1]);
    assert!(d.eof_and_wait().success());
}

/// The drift pin: the daemon's `result` object and the one-shot CLI's
/// `run --json` line are byte-identical (runtime fields normalized) —
/// both are rendered by the same serializer, and this test keeps it that
/// way.
#[test]
fn serve_result_is_byte_identical_to_cli_run_json() {
    let cli = Command::new(env!("CARGO_BIN_EXE_smart-ndr"))
        .args(["run", "--sinks", "120", "--seed", "9", "--json"])
        .output()
        .expect("cli runs");
    assert!(cli.status.success(), "{}", String::from_utf8_lossy(&cli.stderr));
    let cli_json = String::from_utf8(cli.stdout).expect("utf-8").trim_end().to_owned();

    let mut d = Daemon::spawn(&["--jobs", "1"]);
    d.send(&run_request(1, 120, 9, ""));
    let line = d.finals_for(&[1])[&1].clone();
    assert!(d.eof_and_wait().success());

    let prefix = "{\"id\": 1, \"ok\": true, \"cache\": \"miss\", \"result\": ";
    let serve_json = line
        .strip_prefix(prefix)
        .and_then(|rest| rest.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unexpected envelope shape: {line}"));

    assert_eq!(
        normalize_runtime(serve_json),
        normalize_runtime(&cli_json),
        "daemon result and CLI --json output must not drift"
    );
}

/// The pareto drift pin: the daemon's `pareto` result object and the
/// one-shot CLI's `pareto --json` line are byte-identical with no
/// normalization at all — the pareto rendering carries no runtime or
/// replay fields by design — and the sweep streams one `front_point`
/// event per evaluated point.
#[test]
fn serve_pareto_result_is_byte_identical_to_cli_json() {
    let cli_args = [
        "pareto", "--sinks", "80", "--seed", "11", "--slew-margins", "1.05,1.2",
        "--skew-budgets", "15,60", "--windows", "25", "--mc", "6", "--json",
    ];
    let cli = Command::new(env!("CARGO_BIN_EXE_smart-ndr"))
        .args(cli_args)
        .output()
        .expect("cli runs");
    assert!(cli.status.success(), "{}", String::from_utf8_lossy(&cli.stderr));
    let cli_json = String::from_utf8(cli.stdout).expect("utf-8").trim_end().to_owned();

    let mut d = Daemon::spawn(&["--jobs", "2"]);
    d.send(
        "{\"op\": \"pareto\", \"id\": 1, \
         \"design\": {\"generate\": {\"sinks\": 80, \"seed\": 11}}, \
         \"slew_margins\": [1.05, 1.2], \"skew_budgets\": [15, 60], \
         \"windows\": [25], \"mc\": 6}",
    );
    let line = d.finals_for(&[1])[&1].clone();

    let prefix = "{\"id\": 1, \"ok\": true, \"cache\": \"miss\", \"result\": ";
    let serve_json = line
        .strip_prefix(prefix)
        .and_then(|rest| rest.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unexpected envelope shape: {line}"));
    assert_eq!(serve_json, cli_json, "daemon pareto result and CLI --json must not drift");

    // Six sweep points (2 margins × (2 budgets + 1 window)) → six events.
    let front_events = d
        .transcript
        .iter()
        .filter(|l| l.contains("\"event\": \"front_point\""))
        .count();
    assert_eq!(front_events, 6, "one front_point event per point: {:#?}", d.transcript);
    assert!(d.eof_and_wait().success());
}

/// `shutdown` stops intake and exits 0 even with stdin still open.
#[test]
fn shutdown_request_exits_cleanly() {
    let mut d = Daemon::spawn(&["--jobs", "1"]);
    d.send("{\"op\": \"shutdown\", \"id\": 1}");
    let ack = d.finals_for(&[1])[&1].clone();
    assert!(ack.contains("\"shutdown\": true"), "{ack}");
    assert!(d.eof_and_wait().success());
}

/// The durable store behind the daemon: results persist across daemon
/// restarts (unlike the in-memory warm cache), replay byte-identically,
/// and a corrupted entry is quarantined — visible as a `store_quarantined`
/// event and in the `stats` store section — then recomputed and healed.
#[test]
fn store_backed_daemon_replays_across_restarts_and_quarantines_corruption() {
    let dir = std::env::temp_dir()
        .join(format!("smart-ndr-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_arg = dir.to_str().expect("utf-8 path").to_owned();

    // First daemon: cold compute, persisted on the way out.
    let mut d = Daemon::spawn(&["--jobs", "1", "--store", &store_arg]);
    d.send(&run_request(1, 100, 7, ""));
    let cold = d.finals_for(&[1])[&1].clone();
    assert!(cold.contains("\"ok\": true") && cold.contains("\"cache\": \"miss\""), "{cold}");
    assert!(d.eof_and_wait().success());

    // Second daemon, same directory: a fresh process replays from disk.
    let mut d = Daemon::spawn(&["--jobs", "1", "--store", &store_arg]);
    d.send(&run_request(1, 100, 7, ""));
    let warm = d.finals_for(&[1])[&1].clone();
    assert!(
        warm.contains("\"cache\": \"store_hit\""),
        "a restarted daemon must replay from the store: {warm}"
    );
    assert_eq!(
        warm.replace("\"cache\": \"store_hit\"", "\"cache\": \"miss\""),
        cold,
        "the replayed result must be the cold run's bytes"
    );
    d.send("{\"op\": \"stats\", \"id\": 9}");
    let stats = d.finals_for(&[9])[&9].clone();
    assert!(
        stats.contains("\"store\": {\"enabled\": true, \"hits\": 1, \"misses\": 0"),
        "stats must carry the store section: {stats}"
    );
    assert!(
        stats.contains("\"phases\": {}"),
        "a store hit must skip parse, CTS and optimize entirely: {stats}"
    );
    assert!(d.eof_and_wait().success());

    // Corrupt the single persisted entry on disk.
    let entries = dir.join("entries").join("run");
    let entry = std::fs::read_dir(&entries)
        .expect("entry dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "entry"))
        .expect("one persisted entry");
    let mut bytes = std::fs::read(&entry).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&entry, &bytes).expect("corrupt entry");

    // Third daemon: the corruption is detected, quarantined, recomputed.
    let mut d = Daemon::spawn(&["--jobs", "1", "--store", &store_arg]);
    d.send(&run_request(1, 100, 7, ""));
    let recovered = d.finals_for(&[1])[&1].clone();
    assert!(
        recovered.contains("\"ok\": true") && recovered.contains("\"cache\": \"miss\""),
        "a corrupted entry must recompute, not replay: {recovered}"
    );
    assert!(
        recovered.contains("cache_entry_quarantined"),
        "the degradation must ride in the response supervision: {recovered}"
    );
    assert!(
        d.transcript.iter().any(|l| l.contains("\"event\": \"store_quarantined\"")),
        "the quarantine must stream as an event: {:#?}",
        d.transcript
    );
    d.send("{\"op\": \"stats\", \"id\": 9}");
    let stats = d.finals_for(&[9])[&9].clone();
    assert!(
        stats.contains("\"quarantined\": 1"),
        "stats must count the quarantine: {stats}"
    );
    assert!(d.eof_and_wait().success());

    let corpses = std::fs::read_dir(dir.join("corrupt")).expect("corrupt dir").count();
    assert_eq!(corpses, 1, "the corrupted entry must be preserved as evidence");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `"cache": "off"` per request bypasses the store on an otherwise
/// store-backed daemon — the CLI's `--no-cache` maps to exactly this.
#[test]
fn cache_off_request_bypasses_a_store_backed_daemon() {
    let dir = std::env::temp_dir()
        .join(format!("smart-ndr-serve-nocache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_arg = dir.to_str().expect("utf-8 path").to_owned();
    let mut d = Daemon::spawn(&["--jobs", "1", "--store", &store_arg]);
    d.send(&run_request(1, 100, 7, ", \"cache\": \"off\""));
    let fin = d.finals_for(&[1])[&1].clone();
    assert!(fin.contains("\"ok\": true") && fin.contains("\"cache\": \"off\""), "{fin}");
    assert!(d.eof_and_wait().success());
    let wrote = std::fs::read_dir(dir.join("entries").join("run"))
        .map(|rd| rd.count())
        .unwrap_or(0);
    assert_eq!(wrote, 0, "cache=off must not persist anything");
    let _ = std::fs::remove_dir_all(&dir);
}
