//! `--jobs` plumbing: the CLI must produce the same results for any job
//! count — suite rows in suite order (FAILED rows included), Monte Carlo
//! statistics bit-identical — and must reject a zero job count cleanly.
//!
//! Runtime columns are wall-clock and legitimately vary between runs, so
//! comparisons strip them before asserting equality.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smart-ndr"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("smart-ndr-partest-{}-{name}", std::process::id()));
    p
}

/// Drops the trailing runtime token from every suite row (header included:
/// its last token is just "runtime"), leaving only deterministic columns.
fn strip_runtime_column(table: &str) -> String {
    table
        .lines()
        .map(|line| {
            let cols: Vec<&str> = line.split_whitespace().collect();
            match cols.as_slice() {
                [head @ .., _runtime] if head.len() >= 4 => head.join(" "),
                _ => line.to_owned(),
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn suite_rows_identical_across_job_counts() {
    let dir = tmp("suite-jobs");
    std::fs::create_dir_all(&dir).expect("create pool dir");
    for (name, sinks, seed) in [("a.sndr", "24", "1"), ("z.sndr", "32", "2")] {
        let out = bin()
            .args(["gen", "--sinks", sinks, "--seed", seed, "--out"])
            .arg(dir.join(name))
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    // A mid-table poisoned design: the FAILED row must keep its position
    // under parallel evaluation, not drift to the end.
    std::fs::write(dir.join("m-poison.sndr"), "this is not a design\n").expect("write poison");

    let mut tables = Vec::new();
    for jobs in ["1", "4"] {
        let out = bin()
            .args(["suite", "--jobs", jobs, "--designs"])
            .arg(&dir)
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "--jobs {jobs}: a poisoned design must not fail the suite: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(text.contains("FAILED"), "--jobs {jobs}: {text}");
        assert!(text.contains("1 of 3 designs FAILED"), "--jobs {jobs}: {text}");
        // Rows print in suite (sorted-by-name) order regardless of which
        // worker finished first.
        let a = text.find("cli-s24").expect("row for a.sndr");
        let m = text.find("m-poison").expect("row for poisoned design");
        let z = text.find("cli-s32").expect("row for z.sndr");
        assert!(a < m && m < z, "--jobs {jobs}: rows out of suite order: {text}");
        tables.push(strip_runtime_column(&text));
    }
    assert_eq!(tables[0], tables[1], "suite table must not depend on --jobs");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn monte_carlo_stats_identical_across_job_counts() {
    let variation_of = |jobs: &str| {
        let out = bin()
            .args([
                "run", "--sinks", "60", "--seed", "2", "--method", "level", "--mc", "16",
                "--jobs", jobs, "--json",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        let start = text.find("\"variation\"").expect("variation object in JSON");
        text[start..].trim_end().to_owned()
    };
    let serial = variation_of("1");
    assert!(serial.contains("\"sigma_skew_result_ps\""), "{serial}");
    // Per-sample seed derivation makes the statistics independent of the
    // thread count, even oversubscribed on a small machine.
    assert_eq!(serial, variation_of("3"));
    assert_eq!(serial, variation_of("8"));
}

#[test]
fn pareto_front_identical_across_job_counts() {
    let front_of = |jobs: &str| {
        let out = bin()
            .args([
                "pareto", "--sinks", "80", "--seed", "11", "--slew-margins", "1.05,1.2",
                "--skew-budgets", "15,60", "--windows", "25", "--mc", "6", "--jobs", jobs,
                "--json",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let serial = front_of("1");
    assert!(serial.contains("\"front\": ["), "{serial}");
    assert!(serial.contains("\"power_uw\""), "{serial}");
    // Each point evaluates fully serial and seeded; parallelism exists
    // only across points and results fold in enumeration order, so the
    // whole JSON object — front included — is byte-identical.
    assert_eq!(serial, front_of("2"), "pareto front must not depend on --jobs");
    assert_eq!(serial, front_of("8"), "pareto front must not depend on --jobs");
}

#[test]
fn short_jobs_alias_accepted() {
    let out = bin()
        .args(["run", "--sinks", "40", "--seed", "5", "--method", "level", "--mc", "8", "-j", "2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("σ-skew"));
}

#[test]
fn zero_jobs_is_a_usage_error() {
    for args in [
        vec!["suite", "--jobs", "0"],
        vec!["run", "--sinks", "40", "--mc", "4", "--jobs", "0"],
    ] {
        let out = bin().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(1), "zero jobs exits 1 for {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--jobs"),
            "error names the flag for {args:?}"
        );
    }
}
