//! Hostile-input soak for the DEF-lite import frontier: format-aware
//! corruption of a clean external design must never panic or hang the
//! import → CTS → optimize pipeline. 256 seeded cases per corruption
//! category. Each case either produces a design (possibly after repair)
//! that the downstream flow handles with typed errors at worst, or is
//! rejected with a typed [`NetlistError`] whose diagnostics carry at
//! least one `I`-series code — the contract `smart-ndr import` exposes
//! to untrusted files.

use smart_ndr::core::{GreedyDowngrade, NdrOptimizer, OptContext};
use smart_ndr::cts::{export_ndr_tcl, import_ndr_tcl, synthesize, CtsOptions};
use smart_ndr::netlist::faultinject::{corrupt_import_bytes, ImportFault};
use smart_ndr::netlist::{import_design_with, ImportOptions};
use smart_ndr::power::PowerModel;
use smart_ndr::tech::Technology;

/// 256 seeds per category by default; `IMPORT_FUZZ_CASES` overrides it so
/// `scripts/verify.sh` can run a quick 32-seed smoke slice.
fn cases_per_category() -> u64 {
    std::env::var("IMPORT_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// A clean DEF-lite design of the same shape as the checked-in examples:
/// a grid of sinks on a millimetre die, plus a couple of timing arcs.
fn clean_def() -> Vec<u8> {
    let mut text = String::from(
        "VERSION 5.8 ;\n\
         DESIGN soak ;\n\
         UNITS DISTANCE MICRONS 1000 ;\n\
         FREQUENCY 1.2 ;\n\
         DIEAREA ( 0 0 ) ( 1000000 1000000 ) ;\n\
         CLOCKROOT ( 500000 0 ) ;\n\
         PINS 16 ;\n",
    );
    for i in 0..16 {
        let x = 150_000 + (i % 4) * 230_000;
        let y = 150_000 + (i / 4) * 230_000;
        text.push_str(&format!("  - ff{i} ( {x} {y} ) CAP {} ;\n", 5.0 + (i % 7) as f64 * 2.5));
    }
    text.push_str(
        "END PINS\n\
         NETS 2 ;\n\
         - n0 ( ff0 ff15 ) SETUP 60 HOLD 30 ;\n\
         - n1 ( ff3 ff12 ) SETUP 55 HOLD 25 ;\n\
         END NETS\n\
         END DESIGN\n",
    );
    text.into_bytes()
}

/// Imports possibly-hostile bytes and drives whatever comes out through
/// CTS and a greedy NDR optimization. Typed errors at any stage are fine;
/// only panics (which would abort the test process), hangs (caught by the
/// harness timeout) and non-finite results are failures.
fn run_pipeline(bytes: &[u8], repair: bool) -> Result<(), String> {
    let opts = ImportOptions { repair, ..ImportOptions::default() };
    let report = import_design_with(bytes, &opts).map_err(|e| e.to_string())?;
    let design = report.design;
    let tech = Technology::n45();
    let tree = synthesize(&design, &tech, &CtsOptions::default()).map_err(|e| e.to_string())?;
    let ctx = OptContext::new(&tree, &tech, PowerModel::new(design.freq_ghz()));
    let out = GreedyDowngrade::default().optimize(&ctx);
    assert!(
        out.power().total_uw().is_finite(),
        "optimized power must be finite for any imported design"
    );
    Ok(())
}

/// The soak itself: every corruption category, 256 seeds each, with and
/// without repair. Zero panics; every import rejection carries a typed
/// `I`-series diagnostic.
#[test]
fn corrupted_imports_never_panic_and_reject_with_i_codes() {
    let clean = clean_def();
    let mut imported = 0u64;
    let mut rejected = 0u64;
    for fault in ImportFault::ALL {
        for seed in 0..cases_per_category() {
            let bytes = corrupt_import_bytes(&clean, fault, seed);
            for repair in [false, true] {
                match import_design_with(&bytes, &ImportOptions { repair, ..Default::default() })
                {
                    Ok(_) => imported += 1,
                    Err(e) => {
                        rejected += 1;
                        let has_i_code = e
                            .diagnostics()
                            .iter()
                            .any(|d| d.code.id().starts_with('I'));
                        assert!(
                            has_i_code,
                            "{fault:?} seed {seed} (repair={repair}): rejection must carry \
                             an I-series diagnostic, got: {e}"
                        );
                    }
                }
                // The full pipeline also must not panic on whatever the
                // importer accepted.
                let _ = run_pipeline(&bytes, repair);
            }
        }
    }
    // The soak must exercise both outcomes, or the corruption (or the
    // importer) is broken.
    assert!(imported > 0, "no corrupted input ever imported — corruption too destructive");
    assert!(rejected > 0, "no corrupted input was ever rejected — corruption too gentle");
}

/// The clean seed imports, synthesizes and round-trips through the NDR
/// Tcl exchange exactly — anchoring the soak to a known-good baseline.
#[test]
fn clean_seed_imports_and_round_trips_ndr_tcl() {
    let report =
        import_design_with(&clean_def(), &ImportOptions::default()).expect("clean def imports");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    let tech = Technology::n45();
    let tree = synthesize(&report.design, &tech, &CtsOptions::default()).expect("synthesizes");
    let ctx = OptContext::new(&tree, &tech, PowerModel::new(report.design.freq_ghz()));
    let out = GreedyDowngrade::default().optimize(&ctx);
    let tcl = export_ndr_tcl(report.design.name(), &tree, out.assignment(), &tech);
    let back = import_ndr_tcl(&tcl, &tree, &tech).expect("exported script reimports");
    assert_eq!(&back, out.assignment(), "import(export(a)) must equal a");
}

/// Every checked-in example under `examples/` imports (the dirty one with
/// warnings only) and synthesizes — the files the docs point users at
/// must actually work.
#[test]
fn checked_in_examples_import_and_synthesize() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "def"))
        .collect();
    entries.sort();
    for path in entries {
        let bytes = std::fs::read(&path).expect("example readable");
        let report = import_design_with(&bytes, &ImportOptions::default())
            .unwrap_or_else(|e| panic!("{} must import: {e}", path.display()));
        synthesize(&report.design, &Technology::n45(), &CtsOptions::default())
            .unwrap_or_else(|e| panic!("{} must synthesize: {e}", path.display()));
        if path.file_name().is_some_and(|n| n == "dirty12.def") {
            assert!(
                !report.diagnostics.is_empty(),
                "dirty12.def exists to exercise recovery; it must diagnose something"
            );
        } else {
            assert!(
                report.diagnostics.is_empty(),
                "{} should be clean: {:?}",
                path.display(),
                report.diagnostics
            );
        }
        seen += 1;
    }
    assert!(seen >= 3, "expected at least 3 checked-in examples, found {seen}");
}
