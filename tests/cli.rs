//! End-to-end tests of the `smart-ndr` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smart-ndr"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("smart-ndr-clitest-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE") && text.contains("smart-ndr run"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command") && err.contains("USAGE"));
}

#[test]
fn gen_then_run_roundtrip() {
    let design_path = tmp("design.sndr");
    let svg_path = tmp("tree.svg");

    let out = bin()
        .args(["gen", "--sinks", "120", "--seed", "9", "--out"])
        .arg(&design_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = bin()
        .args(["run", "--design"])
        .arg(&design_path)
        .args(["--method", "greedy", "--mc", "10", "--svg"])
        .arg(&svg_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("saving:"), "missing saving line: {text}");
    assert!(text.contains("σ-skew"), "missing variation line: {text}");
    assert!(text.contains("MET"), "result should meet constraints: {text}");

    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));

    let _ = std::fs::remove_file(&design_path);
    let _ = std::fs::remove_file(&svg_path);
}

#[test]
fn run_generates_on_the_fly() {
    let out = bin()
        .args(["run", "--sinks", "60", "--seed", "2", "--method", "level", "--tech", "n32"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("level-based"));
}

#[test]
fn mesh_command_compares_structures() {
    let out = bin()
        .args(["mesh", "--sinks", "80", "--seed", "3", "--grid", "8"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mesh / tree network power"), "{text}");
    assert!(text.contains("drivers"));
}

#[test]
fn run_json_emits_machine_readable_outcome() {
    let out = bin()
        .args(["run", "--sinks", "80", "--seed", "4", "--method", "greedy", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.trim();
    // Exactly one line of output: the JSON object, no human table around it.
    assert!(!line.contains('\n'), "expected a single JSON line: {text}");
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert_eq!(
        line.matches('{').count(),
        line.matches('}').count(),
        "unbalanced braces: {line}"
    );
    for key in [
        "\"design\"",
        "\"constraints\"",
        "\"baseline\"",
        "\"result\"",
        "\"network_uw\"",
        "\"skew_ps\"",
        "\"max_slew_ps\"",
        "\"runtime_s\"",
        "\"rule_histogram_um\"",
        "\"meets_constraints\": true",
        "\"saving\"",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
    // The N45 menu's rules appear as histogram keys.
    assert!(line.contains("\"2W2S\"") && line.contains("\"1W1S\""), "{line}");
}

#[test]
fn run_json_with_variation_includes_sigma_skew() {
    let out = bin()
        .args(["run", "--sinks", "60", "--seed", "2", "--method", "level", "--mc", "8", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"variation\""), "{text}");
    assert!(text.contains("\"sigma_skew_result_ps\""), "{text}");
    assert!(!text.contains("σ-skew"), "human line must be suppressed: {text}");
}

#[test]
fn run_without_design_or_sinks_fails() {
    let out = bin().arg("run").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--design") || err.contains("--sinks"));
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let out = bin()
        .args(["run", "--sinks", "not-a-number"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid --sinks"));
}
