//! End-to-end tests of the `smart-ndr` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smart-ndr"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("smart-ndr-clitest-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE") && text.contains("smart-ndr run"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command") && err.contains("USAGE"));
}

#[test]
fn gen_then_run_roundtrip() {
    let design_path = tmp("design.sndr");
    let svg_path = tmp("tree.svg");

    let out = bin()
        .args(["gen", "--sinks", "120", "--seed", "9", "--out"])
        .arg(&design_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = bin()
        .args(["run", "--design"])
        .arg(&design_path)
        .args(["--method", "greedy", "--mc", "10", "--svg"])
        .arg(&svg_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("saving:"), "missing saving line: {text}");
    assert!(text.contains("σ-skew"), "missing variation line: {text}");
    assert!(text.contains("MET"), "result should meet constraints: {text}");

    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));

    let _ = std::fs::remove_file(&design_path);
    let _ = std::fs::remove_file(&svg_path);
}

#[test]
fn run_generates_on_the_fly() {
    let out = bin()
        .args(["run", "--sinks", "60", "--seed", "2", "--method", "level", "--tech", "n32"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("level-based"));
}

#[test]
fn mesh_command_compares_structures() {
    let out = bin()
        .args(["mesh", "--sinks", "80", "--seed", "3", "--grid", "8"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mesh / tree network power"), "{text}");
    assert!(text.contains("drivers"));
}

#[test]
fn run_json_emits_machine_readable_outcome() {
    let out = bin()
        .args(["run", "--sinks", "80", "--seed", "4", "--method", "greedy", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.trim();
    // Exactly one line of output: the JSON object, no human table around it.
    assert!(!line.contains('\n'), "expected a single JSON line: {text}");
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert_eq!(
        line.matches('{').count(),
        line.matches('}').count(),
        "unbalanced braces: {line}"
    );
    for key in [
        "\"design\"",
        "\"constraints\"",
        "\"baseline\"",
        "\"result\"",
        "\"network_uw\"",
        "\"skew_ps\"",
        "\"max_slew_ps\"",
        "\"runtime_s\"",
        "\"rule_histogram_um\"",
        "\"meets_constraints\": true",
        "\"saving\"",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
    // The N45 menu's rules appear as histogram keys.
    assert!(line.contains("\"2W2S\"") && line.contains("\"1W1S\""), "{line}");
}

#[test]
fn run_json_with_variation_includes_sigma_skew() {
    let out = bin()
        .args(["run", "--sinks", "60", "--seed", "2", "--method", "level", "--mc", "8", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"variation\""), "{text}");
    assert!(text.contains("\"sigma_skew_result_ps\""), "{text}");
    assert!(!text.contains("σ-skew"), "human line must be suppressed: {text}");
}

#[test]
fn run_without_design_or_sinks_fails() {
    let out = bin().arg("run").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--design") || err.contains("--sinks"));
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let out = bin()
        .args(["run", "--sinks", "not-a-number"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "usage errors exit 1");
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid --sinks"));
}

// ---------------------------------------------------------------------------
// Robustness: lint, typed exit codes, JSON error objects, hardened suite.
// ---------------------------------------------------------------------------

/// A structurally broken `.sndr`: NaN coordinate, negative cap, duplicate id.
const BROKEN_SNDR: &str = "sndr 1\ndesign broken freq_ghz 1.0\n\
    die 0 0 100000 100000\nroot 0 0\n\
    sink 0 a nan 10000 5.0\nsink 0 b 20000 20000 -3.0\nsink 1 c 40000 40000 8.0\nend\n";

#[test]
fn lint_clean_design_exits_zero() {
    let path = tmp("lint-clean.sndr");
    let out = bin()
        .args(["gen", "--sinks", "30", "--seed", "5", "--out"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = bin().args(["lint", "--design"]).arg(&path).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lint_invalid_design_exits_three_with_diagnostics() {
    let path = tmp("lint-broken.sndr");
    std::fs::write(&path, BROKEN_SNDR).expect("write test design");
    let out = bin().args(["lint", "--design"]).arg(&path).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "invalid input exits 3");
    let text = String::from_utf8_lossy(&out.stdout);
    // Each problem surfaces as a structured diagnostic with a stable code.
    assert!(text.contains("error[G01]"), "NaN coordinate diagnostic: {text}");
    assert!(text.contains("error[E02]"), "negative cap diagnostic: {text}");
    assert!(text.contains("error[T02]"), "duplicate id diagnostic: {text}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--repair"), "repair hint");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lint_repair_salvages_and_output_is_loadable() {
    let path = tmp("lint-repairme.sndr");
    let fixed = tmp("lint-fixed.sndr");
    std::fs::write(&path, BROKEN_SNDR).expect("write test design");
    let out = bin()
        .args(["lint", "--repair", "--design"])
        .arg(&path)
        .arg("--out")
        .arg(&fixed)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("repaired"), "{text}");
    assert!(text.contains("repair["), "repair actions are reported: {text}");

    // The repaired file round-trips as a clean design.
    let out = bin().args(["lint", "--design"]).arg(&fixed).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&fixed);
}

#[test]
fn lint_infeasible_design_exits_four() {
    // Valid input, but no buffer in the library can drive a 90 nF sink:
    // that is a constraint problem (exit 4), not an input problem (exit 3).
    let path = tmp("lint-heavy.sndr");
    std::fs::write(
        &path,
        "sndr 1\ndesign heavy freq_ghz 1.0\ndie 0 0 100000 100000\nroot 0 0\n\
         sink 0 a 10000 10000 90000\nsink 1 b 90000 90000 12.0\nend\n",
    )
    .expect("write test design");
    let out = bin().args(["lint", "--design"]).arg(&path).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(4), "infeasible exits 4");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn run_json_failure_emits_structured_error_object() {
    // Invalid input: the error object lands on stdout with a stable code.
    let out = bin()
        .args(["run", "--design", "/nonexistent/nope.sndr", "--json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.trim();
    assert!(line.starts_with("{\"error\":"), "error object on stdout: {line}");
    assert!(line.contains("\"code\": \"invalid_input\""), "{line}");
    assert!(line.contains("\"message\":"), "{line}");

    // Infeasible is distinguishable from invalid input by its code.
    let path = tmp("run-heavy.sndr");
    std::fs::write(
        &path,
        "sndr 1\ndesign heavy freq_ghz 1.0\ndie 0 0 100000 100000\nroot 0 0\n\
         sink 0 a 10000 10000 90000\nsink 1 b 90000 90000 12.0\nend\n",
    )
    .expect("write test design");
    let out = bin()
        .args(["run", "--json", "--design"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(4));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"code\": \"infeasible\""), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn suite_continues_past_poisoned_design() {
    let dir = tmp("suite-pool");
    std::fs::create_dir_all(&dir).expect("create pool dir");
    for (name, sinks, seed) in [("a.sndr", "24", "1"), ("z.sndr", "32", "2")] {
        let out = bin()
            .args(["gen", "--sinks", sinks, "--seed", seed, "--out"])
            .arg(dir.join(name))
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    // Sorts between the two healthy designs, so the suite must recover
    // mid-run, not merely tolerate a bad tail.
    std::fs::write(dir.join("m-poison.sndr"), "this is not a design\n").expect("write poison");

    let out = bin().args(["suite", "--designs"]).arg(&dir).output().expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "one poisoned design must not fail the suite: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAILED"), "poisoned row marked FAILED: {text}");
    assert!(text.contains("poison"), "{text}");
    // The healthy designs before and after the poisoned one still completed.
    assert!(text.contains("cli-s24") && text.contains("cli-s32"), "{text}");
    assert!(text.contains("1 of 3 designs FAILED"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The suite front-end of the durable store: rows persist per design
/// content, a second run replays them (runtime column shows `-`, like a
/// resumed row), and the deterministic `--out` artifact is byte-identical
/// cold vs warm.
#[test]
fn suite_store_replays_rows_byte_identically() {
    let dir = tmp("suite-store");
    let designs = dir.join("designs");
    std::fs::create_dir_all(&designs).expect("designs dir");
    for (name, sinks, seed) in [("a.sndr", "24", "1"), ("b.sndr", "32", "2")] {
        let out = bin()
            .args(["gen", "--sinks", sinks, "--seed", seed, "--out"])
            .arg(designs.join(name))
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let store = dir.join("store");
    let run = |out_name: &str| {
        let out = bin()
            .args(["suite", "--designs"])
            .arg(&designs)
            .args(["--store"])
            .arg(&store)
            .args(["--out"])
            .arg(dir.join(out_name))
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        (
            String::from_utf8(out.stdout).expect("utf-8"),
            String::from_utf8(out.stderr).expect("utf-8"),
        )
    };

    let (_, cold_err) = run("cold.txt");
    assert!(
        cold_err.contains("store: 0 hit(s), 2 miss(es), 0 quarantined, 2 write(s)"),
        "cold suite must persist every clean row: {cold_err}"
    );
    let (warm_out, warm_err) = run("warm.txt");
    assert!(
        warm_err.contains("store: 2 hit(s), 0 miss(es), 0 quarantined, 0 write(s)"),
        "warm suite must replay every row: {warm_err}"
    );
    // Replayed rows have no fresh runtime measurement, like resumed rows.
    for line in warm_out.lines().filter(|l| l.contains("cli-s")) {
        assert!(line.trim_end().ends_with(" -"), "replayed row must show '-': {line:?}");
    }
    let cold = std::fs::read(dir.join("cold.txt")).expect("cold artifact");
    let warm = std::fs::read(dir.join("warm.txt")).expect("warm artifact");
    assert_eq!(cold, warm, "the deterministic artifact must be byte-identical cold vs warm");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--no-cache` bypasses the store on both ends: nothing is replayed,
/// nothing is written.
#[test]
fn no_cache_flag_bypasses_the_store() {
    let dir = tmp("no-cache");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store = dir.join("store");
    let run_once = || {
        let out = bin()
            .args(["run", "--sinks", "40", "--seed", "2", "--json", "--no-cache", "--store"])
            .arg(&store)
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stderr).expect("utf-8")
    };
    run_once();
    let err = run_once();
    assert!(
        err.contains("store: 0 hit(s), 0 miss(es), 0 quarantined, 0 write(s)"),
        "--no-cache must not touch the store: {err}"
    );
    let entries = std::fs::read_dir(store.join("entries").join("run"))
        .map(|rd| rd.count())
        .unwrap_or(0);
    assert_eq!(entries, 0, "--no-cache must not persist entries");
    let _ = std::fs::remove_dir_all(&dir);
}
