//! Property-based cross-crate invariants on randomized designs.

use proptest::prelude::*;
use smart_ndr::core::{GreedyDowngrade, NdrOptimizer, OptContext};
use smart_ndr::cts::{synthesize, Assignment, CtsOptions, NodeKind};
use smart_ndr::netlist::BenchmarkSpec;
use smart_ndr::power::{evaluate, PowerModel};
use smart_ndr::tech::{Rule, Technology};
use smart_ndr::timing::{analyze, AnalysisOptions};

fn arb_design() -> impl Strategy<Value = smart_ndr::netlist::Design> {
    (2usize..80, 0u64..1_000, 1usize..6).prop_map(|(n, seed, clusters)| {
        BenchmarkSpec::new(format!("p{n}-{seed}"), n)
            .seed(seed)
            .clusters(clusters)
            .build()
            .expect("spec is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CTS always produces a structurally valid tree containing exactly the
    /// design's sinks, with near-zero skew under the construction rule.
    #[test]
    fn cts_invariants(design in arb_design()) {
        let tech = Technology::n45();
        let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();
        prop_assert!(tree.check().is_ok());
        prop_assert_eq!(tree.sink_nodes().len(), design.sinks().len());
        let asg = Assignment::uniform(&tree, tech.rules().most_conservative_id());
        let rep = analyze(&tree, &tech, &asg, &AnalysisOptions::default());
        prop_assert!(rep.skew_ps() < 1.0, "skew {}", rep.skew_ps());
        // Every sink of the design appears exactly once in the tree.
        let mut seen = vec![false; design.sinks().len()];
        for s in tree.sink_nodes() {
            if let NodeKind::Sink { sink, cap_ff } = tree.node(s).kind() {
                prop_assert!(!seen[sink.0], "duplicate sink");
                seen[sink.0] = true;
                let expect = design.sink(sink).unwrap().cap_ff();
                prop_assert!((cap_ff - expect).abs() < 1e-12);
            }
        }
        prop_assert!(seen.iter().all(|s| *s));
    }

    /// The smart optimizer's output is feasible, never more power than the
    /// conservative baseline, and only uses rules from the menu.
    #[test]
    fn optimizer_invariants(design in arb_design()) {
        let tech = Technology::n45();
        let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();
        let ctx = OptContext::new(&tree, &tech, PowerModel::new(design.freq_ghz()));
        let smart = GreedyDowngrade::default().optimize(&ctx);
        let base = ctx.conservative_baseline();
        prop_assert!(smart.meets_constraints());
        prop_assert!(smart.power().total_uw() <= base.power().total_uw() + 1e-9);
        prop_assert!(smart.assignment().is_valid_for(tech.rules()));
        // Rule usage accounts for every micrometre of wire.
        let usage: f64 = smart.assignment().usage_um(&tree, tech.rules()).iter().sum();
        let wl: f64 = tree.nodes().iter().map(|n| n.edge_len_nm() as f64 / 1_000.0).sum();
        prop_assert!((usage - wl).abs() < 1e-6 * (1.0 + wl));
    }

    /// Power is monotone under per-edge capacitance: upgrading any single
    /// edge from default to 2W2S adds exactly the closed-form wire power.
    #[test]
    fn power_separability(design in arb_design(), pick in 0usize..1_000) {
        let tech = Technology::n45();
        let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();
        let edges: Vec<_> = tree.edges().collect();
        prop_assume!(!edges.is_empty());
        let e = edges[pick % edges.len()];
        let model = PowerModel::new(design.freq_ghz());
        let rules = tech.rules();

        let mut asg = Assignment::uniform(&tree, rules.default_id());
        let before = evaluate(&tree, &tech, &asg, &model);
        asg.set(e, rules.most_conservative_id());
        let after = evaluate(&tree, &tech, &asg, &model);

        let len_um = tree.node(e).edge_len_nm() as f64 / 1_000.0;
        let dc = tech.clock_unit_c(rules.rule(rules.most_conservative_id()))
            - tech.clock_unit_c(Rule::DEFAULT);
        let expect = smart_ndr::tech::units::switching_power_uw(
            dc * len_um, tech.vdd_v(), design.freq_ghz(), 1.0);
        prop_assert!((after.total_uw() - before.total_uw() - expect).abs() < 1e-9);
    }

    /// Timing monotonicity: scaling every edge's R and C up can only slow
    /// the tree (latency) — the property the optimizer's move logic relies
    /// on.
    #[test]
    fn timing_monotone_in_parasitics(design in arb_design(), scale in 1.0f64..2.0) {
        let tech = Technology::n45();
        let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();
        let asg = Assignment::uniform(&tree, tech.rules().default_id());
        let opts = AnalysisOptions::default();
        let nominal = analyze(&tree, &tech, &asg, &opts);

        let n = tree.len();
        let r_up = vec![scale; n];
        let c_up = vec![scale; n];
        let slower = smart_ndr::timing::Analyzer::new()
            .run_scaled(&tree, &tech, &asg, Some((&r_up, &c_up)), &opts);
        prop_assert!(slower.latency_ps() >= nominal.latency_ps() - 1e-9);
        prop_assert!(slower.max_slew_ps() >= nominal.max_slew_ps() - 1e-9);
    }
}
