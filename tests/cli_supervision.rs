//! End-to-end tests of the run-supervision flags: `--max-iters` and
//! `--timeout` must degrade gracefully (anytime: a feasible best-so-far
//! result, exit 0) and leave an auditable receipt in both the human and
//! `--json` output.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smart-ndr"))
}

#[test]
fn max_iters_yields_feasible_result_with_exhausted_receipt() {
    let out = bin()
        .args(["run", "--sinks", "80", "--seed", "4", "--method", "smart", "--max-iters", "5", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // Anytime: the capped run still meets constraints…
    assert!(text.contains("\"meets_constraints\": true"), "{text}");
    // …and the receipt says the cap bound.
    assert!(text.contains("\"supervision\""), "{text}");
    assert!(text.contains("\"budget_exhausted\": true"), "{text}");
    assert!(text.contains("\"exhausted\": true"), "{text}");
    assert!(text.contains("\"iterations\":"), "{text}");
}

#[test]
fn max_iters_human_output_flags_best_so_far() {
    let out = bin()
        .args(["run", "--sinks", "80", "--seed", "4", "--method", "greedy", "--max-iters", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("budget:"), "exhausted budgets get a human line: {text}");
    assert!(text.contains("best-so-far"), "{text}");
}

#[test]
fn expired_timeout_still_exits_zero_with_feasible_result() {
    // A microsecond deadline has long passed by the first budget check:
    // the conservative start is returned as the best-so-far answer and the
    // Monte-Carlo stage reports cancellation instead of partial statistics.
    let out = bin()
        .args(["run", "--sinks", "60", "--seed", "2", "--method", "smart", "--timeout", "0.000001", "--mc", "8", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"meets_constraints\": true"), "anytime under timeout: {text}");
    assert!(text.contains("\"budget_exhausted\": true"), "{text}");
    assert!(text.contains("\"mc_cancelled\": true"), "{text}");
    assert!(!text.contains("\"sigma_skew_result_ps\""), "no partial MC statistics: {text}");
}

#[test]
fn unexhausted_supervision_receipt_on_a_clean_run() {
    let out = bin()
        .args(["run", "--sinks", "60", "--seed", "2", "--method", "smart", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"supervision\""), "{text}");
    assert!(text.contains("\"budget_exhausted\": false"), "{text}");
    assert!(text.contains("\"degradations\": []"), "clean run takes no rungs: {text}");
}

#[test]
fn lagrangian_method_is_supervised_too() {
    let out = bin()
        .args(["run", "--sinks", "60", "--seed", "2", "--method", "lagrangian", "--max-iters", "4", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"meets_constraints\": true"), "{text}");
    assert!(text.contains("\"supervision\""), "{text}");
}

#[test]
fn invalid_supervision_flags_fail_cleanly() {
    for (flag, value, hint) in [
        ("--timeout", "-1", "--timeout"),
        ("--timeout", "nan", "--timeout"),
        ("--max-iters", "not-a-number", "--max-iters"),
    ] {
        let out = bin()
            .args(["run", "--sinks", "40", flag, value])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(1), "usage errors exit 1: {flag} {value}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(hint),
            "{flag} {value} must name the flag"
        );
    }
}
