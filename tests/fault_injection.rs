//! Fault-injection property suite: the full pipeline (load → validate /
//! repair → CTS → optimize → report) must survive seeded corruption of every
//! kind — geometry, topology, electrical and raw serialized bytes — with a
//! typed error or a repaired design, never a panic.
//!
//! 256 seeded cases per category. Each case either fails loading with a
//! typed [`NetlistError`], or loads (possibly after repair) and then runs
//! clock-tree synthesis, a greedy NDR optimization and a timing report;
//! synthesis itself may fail with a typed [`CtsError`] (e.g. an implausible
//! repaired capacitance), which also counts as graceful rejection.

use smart_ndr::core::{GreedyDowngrade, NdrOptimizer, OptContext};
use smart_ndr::cts::{synthesize, CtsOptions};
use smart_ndr::netlist::faultinject::{corrupt_bytes, corrupt_design, DesignFault};
use smart_ndr::netlist::validate::RawDesign;
use smart_ndr::netlist::{load_design_with, save_design, BenchmarkSpec, Design, LoadOptions};
use smart_ndr::power::PowerModel;
use smart_ndr::tech::Technology;

const CASES_PER_CATEGORY: u64 = 256;

fn base_design() -> Design {
    BenchmarkSpec::new("fi", 12).seed(3).build().expect("spec is valid")
}

/// Serializes a raw (possibly corrupt) design back to `.sndr` text so the
/// corruption travels through the real parser, not just the validator.
/// Rust's `{}` float formatting writes `NaN`/`inf`, which the parser's
/// `f64::from_str` round-trips.
fn raw_to_sndr(raw: &RawDesign) -> String {
    let mut out = String::new();
    out.push_str("sndr 1\n");
    out.push_str(&format!("design {} freq_ghz {}\n", raw.name, raw.freq_ghz));
    let (x0, y0, x1, y1) = raw.die;
    out.push_str(&format!("die {x0} {y0} {x1} {y1}\n"));
    out.push_str(&format!("root {} {}\n", raw.root.0, raw.root.1));
    for s in &raw.sinks {
        out.push_str(&format!("sink {} {} {} {} {}\n", s.id, s.name, s.x, s.y, s.cap_ff));
    }
    for a in &raw.arcs {
        out.push_str(&format!("arc {} {} {} {}\n", a.from, a.to, a.setup_ps, a.hold_ps));
    }
    out.push_str("end\n");
    out
}

/// Drives whatever loaded through the rest of the pipeline. Typed errors at
/// any stage are fine; only panics (which would abort the test process) and
/// non-finite report numbers are failures.
fn run_pipeline(bytes: &[u8], repair: bool) -> Result<(), String> {
    let opts = LoadOptions {
        repair,
        ..LoadOptions::default()
    };
    let report = load_design_with(bytes, &opts).map_err(|e| e.to_string())?;
    let design = report.design;
    let tech = Technology::n45();
    let tree = synthesize(&design, &tech, &CtsOptions::default()).map_err(|e| e.to_string())?;
    let ctx = OptContext::new(&tree, &tech, PowerModel::new(design.freq_ghz()))
        .with_timing_arcs(design.arcs().to_vec())
        .map_err(|e| e.to_string())?;
    let out = GreedyDowngrade::default().optimize(&ctx);
    let timing = out.timing();
    if !(timing.skew_ps().is_finite()
        && timing.max_slew_ps().is_finite()
        && out.power().network_uw().is_finite())
    {
        return Err(format!(
            "non-finite report from a loaded design: skew {} slew {} power {}",
            timing.skew_ps(),
            timing.max_slew_ps(),
            out.power().network_uw()
        ));
    }
    Ok(())
}

/// 256 seeds per design-level fault category: corrupt, re-serialize, then
/// run the pipeline both strictly (reject) and with repair on. Nothing may
/// panic; strict mode must turn Error-severity corruption into a rejection.
fn exercise_category(fault: DesignFault) {
    let base = base_design();
    let mut loaded = 0usize;
    let mut rejected = 0usize;
    for seed in 0..CASES_PER_CATEGORY {
        let raw = corrupt_design(&base, fault, seed);
        let text = raw_to_sndr(&raw);
        match run_pipeline(text.as_bytes(), false) {
            Ok(()) => loaded += 1,
            Err(_) => rejected += 1,
        }
        // Repair mode: the outcome may still be a typed error (unsalvageable
        // or infeasible), but never a panic.
        let _ = run_pipeline(text.as_bytes(), true);
    }
    // The corruption engine must actually produce invalid designs, and the
    // benign mutations (e.g. a shifted coordinate) must still load.
    assert_eq!(loaded + rejected, CASES_PER_CATEGORY as usize);
    assert!(
        rejected > 0,
        "{fault:?}: no corrupted case was ever rejected ({loaded} loaded)"
    );
}

#[test]
fn geometry_faults_never_panic_the_pipeline() {
    exercise_category(DesignFault::Geometry);
}

#[test]
fn topology_faults_never_panic_the_pipeline() {
    exercise_category(DesignFault::Topology);
}

#[test]
fn electrical_faults_never_panic_the_pipeline() {
    exercise_category(DesignFault::Electrical);
}

/// 256 seeds of byte-level corruption of a serialized design: bit flips,
/// truncation, token scrambling, version garbage. Every case must yield a
/// typed error or a loadable (possibly repaired) design.
#[test]
fn corrupted_bytes_never_panic_the_pipeline() {
    let base = base_design();
    let mut bytes = Vec::new();
    save_design(&base, &mut bytes).expect("serialize base design");
    let mut rejected = 0usize;
    for seed in 0..CASES_PER_CATEGORY {
        let evil = corrupt_bytes(&bytes, seed);
        if run_pipeline(&evil, false).is_err() {
            rejected += 1;
        }
        let _ = run_pipeline(&evil, true);
    }
    assert!(rejected > 0, "byte corruption never produced a rejection");
}

/// Sanity anchor: the uncorrupted base design passes the whole pipeline in
/// strict mode, so the categories above are rejecting corruption, not the
/// harness.
#[test]
fn pristine_base_design_passes_strict_pipeline() {
    let base = base_design();
    let mut bytes = Vec::new();
    save_design(&base, &mut bytes).expect("serialize base design");
    run_pipeline(&bytes, false).expect("pristine design must pass");
}
