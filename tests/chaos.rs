//! Seeded chaos soak (ISSUE 5 acceptance): ≥128 seeds × {panic, stall,
//! divergence} execution faults against the supervised flow, asserting
//! zero hangs (the test completes; `scripts/soak.sh` adds an outer
//! timeout), zero partial/orphaned files from the crash-safe writers, and
//! every recovery recorded on the degradation ladder.
//!
//! Runs the library API directly with the `fault-inject` hooks that the
//! root dev-dependency enables; designs are shared across seeds so the
//! soak stays fast while the fault parameters sweep.

use smart_ndr::core::{
    DegradationEvent, ExecFault, GreedyDowngrade, NdrOptimizer, OptContext, Parallelism,
    SupervisedRun,
};
use smart_ndr::cts::{synthesize, Assignment, ClockTree, CtsOptions};
use smart_ndr::netlist::BenchmarkSpec;
use smart_ndr::power::PowerModel;
use smart_ndr::tech::Technology;
use std::path::PathBuf;

const SEEDS: u64 = 128;

/// A small pool of trees shared by every seed: the fault parameters vary
/// per seed, the designs need not.
fn fixtures() -> Vec<(ClockTree, Technology)> {
    [(40usize, 2u64), (56, 9), (72, 17), (88, 23)]
        .into_iter()
        .map(|(sinks, seed)| {
            let design =
                BenchmarkSpec::new("chaos", sinks).seed(seed).build().expect("valid spec");
            let tech = Technology::n45();
            let tree = synthesize(&design, &tech, &CtsOptions::default()).expect("synthesizable");
            (tree, tech)
        })
        .collect()
}

fn clean_reference(tree: &ClockTree, tech: &Technology) -> Assignment {
    let ctx = OptContext::new(tree, tech, PowerModel::new(1.0));
    GreedyDowngrade::default().assign(&ctx)
}

fn supervised_with_fault(
    tree: &ClockTree,
    tech: &Technology,
    fault: ExecFault,
    guard_every: bool,
) -> SupervisedRun {
    let mut ctx = OptContext::new(tree, tech, PowerModel::new(1.0)).with_exec_fault(fault);
    if guard_every {
        ctx = ctx.with_divergence_guard(1, 1e-6);
    }
    GreedyDowngrade::default().with_parallelism(Parallelism::new(2)).assign_supervised(&ctx)
}

fn rungs(run: &SupervisedRun) -> Vec<&'static str> {
    run.degradations.iter().map(DegradationEvent::rung).collect()
}

#[test]
fn chaos_soak_recovers_from_every_injected_fault() {
    let pool = fixtures();
    let references: Vec<Assignment> =
        pool.iter().map(|(tree, tech)| clean_reference(tree, tech)).collect();
    // The injected worker panics are expected; silence exactly those while
    // keeping real assertion failures loud.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            prev_hook(info);
        }
    }));
    let mut guard_trips = 0usize;
    for seed in 0..SEEDS {
        let (tree, tech) = &pool[(seed % pool.len() as u64) as usize];
        let reference = &references[(seed % pool.len() as u64) as usize];

        // Fault parameters sweep with the seed.
        let panic_run = supervised_with_fault(
            tree,
            tech,
            ExecFault::ProbePanic { at_probe: seed % 11 },
            false,
        );
        assert!(
            rungs(&panic_run).contains(&"parallel_to_serial"),
            "seed {seed}: worker panic not recorded on the ladder: {:?}",
            panic_run.degradations
        );
        assert_eq!(
            &panic_run.assignment, reference,
            "seed {seed}: panic recovery must reproduce the clean serial result"
        );

        let stall_run = supervised_with_fault(
            tree,
            tech,
            ExecFault::ProbeStall { at_probe: seed % 7, millis: 1 },
            false,
        );
        assert!(
            stall_run.degradations.is_empty(),
            "seed {seed}: a stalled worker is not a failure: {:?}",
            stall_run.degradations
        );
        assert_eq!(&stall_run.assignment, reference, "seed {seed}: stall changed the result");

        // Divergence injection: the corrupted stage aggregates may or may
        // not dominate the next commit's maxima (a perturbed non-critical
        // stage is recomputed away harmlessly), so per-seed the invariant
        // is *correctness* — the guarded run must reproduce the clean
        // result either way, and any recovery that does happen must be the
        // incremental→full rung. tests in crates/core/tests/exec_faults.rs
        // pin a configuration where detection is deterministic.
        let diverge_run = supervised_with_fault(
            tree,
            tech,
            ExecFault::Divergence { at_commit: 1 + (seed % 5) as usize, delta_ps: 1e-3 },
            true,
        );
        for rung in rungs(&diverge_run) {
            assert_eq!(
                rung, "incremental_to_full",
                "seed {seed}: unexpected rung for a divergence fault"
            );
        }
        guard_trips += diverge_run.degradations.len();
        assert_eq!(
            &diverge_run.assignment, reference,
            "seed {seed}: guarded run must stay correct under corruption"
        );
    }
    assert!(guard_trips > 0, "the sweep must trip the divergence guard at least once");
    let _ = std::panic::take_hook();
}

#[test]
fn chaos_soak_crash_safe_writers_leave_no_partial_files() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("smart-ndr-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let artifact = dir.join("rows.txt");
    let journal_path = dir.join("rows.txt.journal.jsonl");
    for seed in 0..SEEDS {
        // A "crashed" predecessor left a stale temp and a torn journal tail.
        std::fs::write(snr_fsio::temp_path(&artifact), b"torn artifact").expect("stale tmp");
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&journal_path)
                .expect("journal file");
            write!(f, "{{\"seed\": {seed}, \"torn\": tr").expect("torn tail");
        }
        // Resume drops the torn tail, appends, and the atomic write lands.
        let (mut journal, recovered) =
            snr_fsio::Journal::resume(&journal_path).expect("resume journal");
        for line in &recovered {
            assert!(!line.contains("\"torn\""), "seed {seed}: torn line survived: {line}");
        }
        journal.append(&format!("{{\"seed\": {seed}}}")).expect("append row");
        snr_fsio::atomic_write(&artifact, format!("rows after seed {seed}\n").as_bytes())
            .expect("atomic artifact");

        // Invariants after every cycle: the artifact is complete and no
        // temp file survives.
        let text = std::fs::read_to_string(&artifact).expect("artifact readable");
        assert_eq!(text, format!("rows after seed {seed}\n"));
        assert!(
            !snr_fsio::temp_path(&artifact).exists(),
            "seed {seed}: orphaned temp file survived an atomic write"
        );
    }
    // Every appended row survived every simulated crash.
    let lines = snr_fsio::Journal::load(&journal_path).expect("journal readable");
    assert_eq!(lines.len() as u64, SEEDS, "one durable line per seed");
    let _ = std::fs::remove_dir_all(&dir);
}
