//! Seeded chaos soak (ISSUE 5 acceptance): ≥128 seeds × {panic, stall,
//! divergence} execution faults against the supervised flow, asserting
//! zero hangs (the test completes; `scripts/soak.sh` adds an outer
//! timeout), zero partial/orphaned files from the crash-safe writers, and
//! every recovery recorded on the degradation ladder.
//!
//! Runs the library API directly with the `fault-inject` hooks that the
//! root dev-dependency enables; designs are shared across seeds so the
//! soak stays fast while the fault parameters sweep.

use smart_ndr::core::{
    DegradationEvent, ExecFault, GreedyDowngrade, NdrOptimizer, OptContext, Parallelism,
    SupervisedRun,
};
use smart_ndr::cts::{synthesize, Assignment, ClockTree, CtsOptions};
use smart_ndr::netlist::BenchmarkSpec;
use smart_ndr::power::PowerModel;
use smart_ndr::tech::Technology;
use std::path::PathBuf;

const SEEDS: u64 = 128;

/// A small pool of trees shared by every seed: the fault parameters vary
/// per seed, the designs need not.
fn fixtures() -> Vec<(ClockTree, Technology)> {
    [(40usize, 2u64), (56, 9), (72, 17), (88, 23)]
        .into_iter()
        .map(|(sinks, seed)| {
            let design =
                BenchmarkSpec::new("chaos", sinks).seed(seed).build().expect("valid spec");
            let tech = Technology::n45();
            let tree = synthesize(&design, &tech, &CtsOptions::default()).expect("synthesizable");
            (tree, tech)
        })
        .collect()
}

fn clean_reference(tree: &ClockTree, tech: &Technology) -> Assignment {
    let ctx = OptContext::new(tree, tech, PowerModel::new(1.0));
    GreedyDowngrade::default().assign(&ctx)
}

fn supervised_with_fault(
    tree: &ClockTree,
    tech: &Technology,
    fault: ExecFault,
    guard_every: bool,
) -> SupervisedRun {
    let mut ctx = OptContext::new(tree, tech, PowerModel::new(1.0)).with_exec_fault(fault);
    if guard_every {
        ctx = ctx.with_divergence_guard(1, 1e-6);
    }
    GreedyDowngrade::default().with_parallelism(Parallelism::new(2)).assign_supervised(&ctx)
}

fn rungs(run: &SupervisedRun) -> Vec<&'static str> {
    run.degradations.iter().map(DegradationEvent::rung).collect()
}

#[test]
fn chaos_soak_recovers_from_every_injected_fault() {
    let pool = fixtures();
    let references: Vec<Assignment> =
        pool.iter().map(|(tree, tech)| clean_reference(tree, tech)).collect();
    // The injected worker panics are expected; silence exactly those while
    // keeping real assertion failures loud.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            prev_hook(info);
        }
    }));
    let mut guard_trips = 0usize;
    for seed in 0..SEEDS {
        let (tree, tech) = &pool[(seed % pool.len() as u64) as usize];
        let reference = &references[(seed % pool.len() as u64) as usize];

        // Fault parameters sweep with the seed.
        let panic_run = supervised_with_fault(
            tree,
            tech,
            ExecFault::ProbePanic { at_probe: seed % 11 },
            false,
        );
        assert!(
            rungs(&panic_run).contains(&"parallel_to_serial"),
            "seed {seed}: worker panic not recorded on the ladder: {:?}",
            panic_run.degradations
        );
        assert_eq!(
            &panic_run.assignment, reference,
            "seed {seed}: panic recovery must reproduce the clean serial result"
        );

        let stall_run = supervised_with_fault(
            tree,
            tech,
            ExecFault::ProbeStall { at_probe: seed % 7, millis: 1 },
            false,
        );
        assert!(
            stall_run.degradations.is_empty(),
            "seed {seed}: a stalled worker is not a failure: {:?}",
            stall_run.degradations
        );
        assert_eq!(&stall_run.assignment, reference, "seed {seed}: stall changed the result");

        // Divergence injection: the corrupted stage aggregates may or may
        // not dominate the next commit's maxima (a perturbed non-critical
        // stage is recomputed away harmlessly), so per-seed the invariant
        // is *correctness* — the guarded run must reproduce the clean
        // result either way, and any recovery that does happen must be the
        // incremental→full rung. tests in crates/core/tests/exec_faults.rs
        // pin a configuration where detection is deterministic.
        let diverge_run = supervised_with_fault(
            tree,
            tech,
            ExecFault::Divergence { at_commit: 1 + (seed % 5) as usize, delta_ps: 1e-3 },
            true,
        );
        for rung in rungs(&diverge_run) {
            assert_eq!(
                rung, "incremental_to_full",
                "seed {seed}: unexpected rung for a divergence fault"
            );
        }
        guard_trips += diverge_run.degradations.len();
        assert_eq!(
            &diverge_run.assignment, reference,
            "seed {seed}: guarded run must stay correct under corruption"
        );
    }
    assert!(guard_trips > 0, "the sweep must trip the divergence guard at least once");
    let _ = std::panic::take_hook();
}

#[test]
fn chaos_soak_crash_safe_writers_leave_no_partial_files() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("smart-ndr-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let artifact = dir.join("rows.txt");
    let journal_path = dir.join("rows.txt.journal.jsonl");
    for seed in 0..SEEDS {
        // A "crashed" predecessor left a stale temp and a torn journal tail.
        std::fs::write(snr_fsio::temp_path(&artifact), b"torn artifact").expect("stale tmp");
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&journal_path)
                .expect("journal file");
            write!(f, "{{\"seed\": {seed}, \"torn\": tr").expect("torn tail");
        }
        // Resume drops the torn tail, appends, and the atomic write lands.
        let (mut journal, recovered) =
            snr_fsio::Journal::resume(&journal_path).expect("resume journal");
        for line in &recovered {
            assert!(!line.contains("\"torn\""), "seed {seed}: torn line survived: {line}");
        }
        journal.append(&format!("{{\"seed\": {seed}}}")).expect("append row");
        snr_fsio::atomic_write(&artifact, format!("rows after seed {seed}\n").as_bytes())
            .expect("atomic artifact");

        // Invariants after every cycle: the artifact is complete and no
        // temp file survives.
        let text = std::fs::read_to_string(&artifact).expect("artifact readable");
        assert_eq!(text, format!("rows after seed {seed}\n"));
        assert!(
            !snr_fsio::temp_path(&artifact).exists(),
            "seed {seed}: orphaned temp file survived an atomic write"
        );
    }
    // Every appended row survived every simulated crash.
    let lines = snr_fsio::Journal::load(&journal_path).expect("journal readable");
    assert_eq!(lines.len() as u64, SEEDS, "one durable line per seed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replaces every measured `"runtime_s"` value with `X`, leaving all
/// deterministic fields intact for comparison.
fn normalize_runtime(s: &str) -> String {
    const KEY: &str = "\"runtime_s\": ";
    let mut out = String::new();
    let mut rest = s;
    while let Some(i) = rest.find(KEY) {
        let start = i + KEY.len();
        out.push_str(&rest[..start]);
        out.push('X');
        let tail = &rest[start..];
        let end = tail.find([',', '}']).expect("runtime_s value is delimited");
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// The disk-cache chaos arm (ISSUE 7 acceptance): `run --store` processes
/// SIGKILLed at seeded delays mid-run must never leave the store in a state
/// that panics, replays wrong bytes, or quarantines anything — atomic
/// per-pid staging means a torn write simply never becomes an entry. After
/// the dust settles, a completed run persists and the next run replays it
/// byte-identically, with no temp debris left behind.
#[test]
fn chaos_soak_store_survives_sigkill_mid_run() {
    let bin = env!("CARGO_BIN_EXE_smart-ndr");
    let dir: PathBuf =
        std::env::temp_dir().join(format!("smart-ndr-chaos-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store = dir.join("store");
    let store_arg = store.to_str().expect("utf-8 path");
    let args = ["run", "--sinks", "80", "--seed", "5", "--json", "--store", store_arg];

    // The clean reference, computed without any store.
    let reference = std::process::Command::new(bin)
        .args(["run", "--sinks", "80", "--seed", "5", "--json"])
        .output()
        .expect("reference run");
    assert!(reference.status.success());
    let reference = normalize_runtime(&String::from_utf8(reference.stdout).expect("utf-8"));

    for seed in 0..24u64 {
        let mut child = std::process::Command::new(bin)
            .args(args)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("store run spawns");
        // Seeded kill delay sweeps from "barely started" past "already
        // done"; both sides of the race must be survivable.
        std::thread::sleep(std::time::Duration::from_micros((seed * seed) % 40_000));
        let _ = child.kill();
        let _ = child.wait();

        // Recovery run: must complete and reproduce the clean reference
        // whether it found a persisted entry, torn debris, or nothing.
        let out = std::process::Command::new(bin).args(args).output().expect("recovery run");
        assert!(out.status.success(), "seed {seed}: recovery run failed");
        let json = normalize_runtime(&String::from_utf8(out.stdout).expect("utf-8"));
        assert_eq!(json, reference, "seed {seed}: recovery drifted from the clean reference");
    }

    // Atomic staging means a SIGKILL can tear a temp file but never an
    // entry: nothing across the whole soak may have been quarantined.
    let corpses = std::fs::read_dir(store.join("corrupt")).map(|rd| rd.count()).unwrap_or(0);
    assert_eq!(corpses, 0, "a torn write must never become a (quarantined) entry");

    // The store settled warm: two more runs replay the same entry, byte-
    // identical to each other (a replay serves the stored cold bytes).
    let a = std::process::Command::new(bin).args(args).output().expect("warm run");
    let b = std::process::Command::new(bin).args(args).output().expect("warm run");
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "warm replays must be byte-identical");
    assert_eq!(
        normalize_runtime(&String::from_utf8(a.stdout).expect("utf-8")),
        reference,
        "the persisted result must match the clean reference"
    );
    assert!(
        String::from_utf8(b.stderr).expect("utf-8").contains("store: 1 hit(s)"),
        "the final run must be served from the store"
    );

    // The final open swept every dead writer's temp file.
    for sub in ["run", "suite"] {
        let dir = store.join("entries").join(sub);
        let Ok(listing) = std::fs::read_dir(&dir) else { continue };
        for entry in listing.filter_map(Result::ok) {
            assert!(
                entry.path().extension().is_some_and(|x| x == "entry"),
                "stray non-entry file survived the soak: {:?}",
                entry.path()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The pareto chaos arm (ISSUE 9 acceptance): `pareto --store` processes
/// SIGKILLed mid-sweep leave only whole per-point entries behind (atomic
/// staging), so a warm resume replays the completed points and recomputes
/// the rest — producing the byte-identical front with zero quarantines.
#[test]
fn chaos_soak_pareto_store_survives_sigkill_mid_sweep() {
    let bin = env!("CARGO_BIN_EXE_smart-ndr");
    let dir: PathBuf =
        std::env::temp_dir().join(format!("smart-ndr-chaos-pareto-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store = dir.join("store");
    let store_arg = store.to_str().expect("utf-8 path");
    let sweep = [
        "pareto", "--sinks", "80", "--seed", "11", "--slew-margins", "1.05,1.2",
        "--skew-budgets", "15,60", "--windows", "25", "--mc", "6", "--json",
    ];
    let mut args: Vec<&str> = sweep.to_vec();
    args.extend(["--store", store_arg]);

    // The clean reference front, computed without any store. Pareto JSON
    // carries no runtime or replay fields, so no normalization is needed.
    let reference = std::process::Command::new(bin).args(sweep).output().expect("reference");
    assert!(reference.status.success());
    let reference = String::from_utf8(reference.stdout).expect("utf-8");

    for seed in 0..24u64 {
        let mut child = std::process::Command::new(bin)
            .args(&args)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("pareto store run spawns");
        // Seeded kill delay sweeps from "barely started" past "sweep
        // done"; both sides of the race must be survivable.
        std::thread::sleep(std::time::Duration::from_micros((seed * seed * 7) % 50_000));
        let _ = child.kill();
        let _ = child.wait();

        // Warm resume: replays whatever points persisted, recomputes the
        // rest, and must land on the byte-identical front either way.
        let out = std::process::Command::new(bin).args(&args).output().expect("resume run");
        assert!(out.status.success(), "seed {seed}: resumed sweep failed");
        let json = String::from_utf8(out.stdout).expect("utf-8");
        assert_eq!(json, reference, "seed {seed}: resumed front drifted from the reference");
    }

    // A SIGKILL can tear a temp file but never an entry: zero quarantines.
    let corpses = std::fs::read_dir(store.join("corrupt")).map(|rd| rd.count()).unwrap_or(0);
    assert_eq!(corpses, 0, "a torn point write must never become a (quarantined) entry");

    // Settled warm: every point replays (6 points → 6 hits, no misses)
    // and the front is still the reference's bytes.
    let warm = std::process::Command::new(bin).args(&args).output().expect("warm run");
    assert!(warm.status.success());
    assert_eq!(String::from_utf8(warm.stdout).expect("utf-8"), reference);
    assert!(
        String::from_utf8(warm.stderr)
            .expect("utf-8")
            .contains("store: 6 hit(s), 0 miss(es), 0 quarantined"),
        "the settled sweep must replay every point from the store"
    );

    // The final open swept every dead writer's temp file.
    let entries = store.join("entries").join("pareto");
    if let Ok(listing) = std::fs::read_dir(&entries) {
        for entry in listing.filter_map(Result::ok) {
            assert!(
                entry.path().extension().is_some_and(|x| x == "entry"),
                "stray non-entry file survived the soak: {:?}",
                entry.path()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
