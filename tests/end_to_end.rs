//! Cross-crate integration tests: the full flow from benchmark generation
//! through CTS, timing, power, optimization and variation analysis.

use smart_ndr::core::{
    enforce_robustness, Constraints, GreedyDowngrade, LevelBased, NdrOptimizer, OptContext,
    RobustnessSpec, SmartNdr,
};
use smart_ndr::cts::{h_tree, insert_buffers, synthesize, Assignment, CtsOptions};
use smart_ndr::netlist::{ispd_like_suite, BenchmarkSpec};
use smart_ndr::power::{evaluate, PowerModel};
use smart_ndr::tech::Technology;
use smart_ndr::timing::{analyze, AnalysisOptions};
use smart_ndr::variation::{MonteCarlo, VariationModel};
use smart_ndr::Flow;

#[test]
fn flow_across_sizes_and_technologies() {
    for tech in [Technology::n45(), Technology::n32()] {
        for n in [40usize, 250] {
            let design = BenchmarkSpec::new(format!("e2e-{n}"), n)
                .seed(n as u64)
                .build()
                .unwrap();
            let report = Flow::new(tech.clone()).run(&design).unwrap();
            assert!(
                report.smart().meets_constraints(),
                "{} n={n}: smart violates",
                tech.name()
            );
            assert!(
                report.saving() >= 0.0,
                "{} n={n}: smart worse than baseline",
                tech.name()
            );
            assert_eq!(report.tree().sink_nodes().len(), n);
            report.tree().check().unwrap();
        }
    }
}

#[test]
fn full_flow_is_deterministic() {
    let design = BenchmarkSpec::new("det", 120).seed(9).build().unwrap();
    let flow = Flow::new(Technology::n45());
    let a = flow.run(&design).unwrap();
    let b = flow.run(&design).unwrap();
    assert_eq!(a.smart().assignment(), b.smart().assignment());
    assert_eq!(
        a.smart().power().total_uw(),
        b.smart().power().total_uw()
    );
}

#[test]
fn conservative_baseline_has_near_zero_skew_across_suite() {
    // The buffered-DME construction promise, checked on every suite design.
    for design in ispd_like_suite().into_iter().take(4) {
        let tech = Technology::n45();
        let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();
        let asg = Assignment::uniform(&tree, tech.rules().most_conservative_id());
        let rep = analyze(&tree, &tech, &asg, &AnalysisOptions::default());
        assert!(
            rep.skew_ps() < 1.0,
            "{}: baseline skew {} ps",
            design.name(),
            rep.skew_ps()
        );
    }
}

#[test]
fn htree_path_through_all_crates() {
    use smart_ndr::geom::{Point, Rect};
    let area = Rect::new(Point::new(0, 0), Point::new(1_200_000, 1_200_000));
    let tech = Technology::n45();
    let opts = CtsOptions::default();
    let tree = insert_buffers(h_tree(area, 3, 12.0), &tech, &opts).unwrap();
    tree.check().unwrap();

    let asg = Assignment::uniform(&tree, tech.rules().most_conservative_id());
    let rep = analyze(&tree, &tech, &asg, &AnalysisOptions::default());
    // A perfect H-tree with level-synchronized buffers stays symmetric.
    assert!(rep.skew_ps() < 1e-6, "H-tree skew {}", rep.skew_ps());

    let power = evaluate(&tree, &tech, &asg, &PowerModel::new(2.0));
    assert!(power.total_uw() > 0.0);
    assert!((power.sink_cap_ff() - 64.0 * 12.0).abs() < 1e-9);
}

#[test]
fn smart_beats_all_baselines_on_midsize() {
    let design = BenchmarkSpec::new("mid", 400).seed(3).build().unwrap();
    let tech = Technology::n45();
    let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();
    let ctx = OptContext::new(&tree, &tech, PowerModel::new(design.freq_ghz()));
    let smart = SmartNdr::default().optimize(&ctx);
    let base = ctx.conservative_baseline();
    let level = LevelBased.optimize(&ctx);
    assert!(smart.meets_constraints());
    assert!(smart.power().network_uw() <= level.power().network_uw() + 1e-9);
    assert!(smart.power().network_uw() < base.power().network_uw());
    // Routing resource should also be saved (cheap rules occupy less
    // track).
    assert!(smart.power().track_cost_um() < base.power().track_cost_um());
}

#[test]
fn robustness_loop_keeps_nominal_feasibility() {
    let design = BenchmarkSpec::new("rob", 200).seed(4).build().unwrap();
    let tech = Technology::n45();
    let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();
    let ctx = OptContext::new(&tree, &tech, PowerModel::new(1.0));
    let smart = GreedyDowngrade::default().assign(&ctx);

    let mc = MonteCarlo::new(VariationModel::default(), 60, 17);
    let base_sigma = mc
        .run(&tree, &tech, &ctx.conservative_assignment())
        .sigma_skew_ps()
        .max(0.2);
    let spec = RobustnessSpec::new(2.0 * base_sigma, VariationModel::default(), 60, 17);
    let before_sigma = mc.run(&tree, &tech, &smart).sigma_skew_ps();
    let (repaired, final_report, upgrades) = enforce_robustness(&ctx, smart, &spec);
    // Either the budget was met, or every remaining upgrade would break the
    // nominal envelope; in both cases σ must not have been made worse than
    // the unrepaired assignment by more than MC noise.
    assert!(
        final_report.sigma_skew_ps() <= 2.0 * base_sigma + 1e-9
            || final_report.sigma_skew_ps() <= before_sigma * 1.05 + 0.1,
        "repair worsened sigma: {} -> {} ({upgrades} upgrades)",
        before_sigma,
        final_report.sigma_skew_ps()
    );
    // The repair never sacrifices nominal feasibility.
    assert!(ctx.feasible(&repaired));
}

#[test]
fn tightening_constraints_never_gains_power() {
    let design = BenchmarkSpec::new("tight", 150).seed(5).build().unwrap();
    let tech = Technology::n45();
    let tree = synthesize(&design, &tech, &CtsOptions::default()).unwrap();

    let run = |budget: f64| {
        let ctx = OptContext::new(&tree, &tech, PowerModel::new(1.0))
            .with_constraints(Constraints::relative(&tree, &tech, 1.10, budget));
        SmartNdr::default()
            .optimize(&ctx)
            .power()
            .network_uw()
    };
    // Wider skew budgets admit supersets of assignments; with the best-of
    // flow the realized power should not get *worse* by much when the
    // budget loosens (heuristic wiggle below 1%).
    let p_tight = run(5.0);
    let p_loose = run(60.0);
    assert!(
        p_loose <= p_tight * 1.01,
        "loose {p_loose} vs tight {p_tight}"
    );
}

#[test]
fn suite_statistics_are_stable() {
    let suite = ispd_like_suite();
    let names: Vec<&str> = suite.iter().map(|d| d.name()).collect();
    assert_eq!(
        names,
        ["s400", "s600", "s800", "s1200", "s1600", "s2000", "s2500", "s3000"]
    );
    for d in &suite {
        assert!(d.total_sink_cap_ff() > 0.0);
        assert!(d.die().contains(d.clock_root()));
    }
}
